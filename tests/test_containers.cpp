// Tests for the distributed containers built on the mailbox (containers/).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <numeric>
#include <string>
#include <vector>

#include "apps/connected_components.hpp"
#include "containers/array.hpp"
#include "containers/bag.hpp"
#include "containers/counting_set.hpp"
#include "containers/disjoint_set.hpp"
#include "containers/map.hpp"
#include "core/ygm.hpp"

namespace {

namespace sim = ygm::mpisim;
using ygm::core::comm_world;
using ygm::routing::scheme_kind;
using ygm::routing::topology;

// -------------------------------------------------------------------- bag

TEST(Bag, InsertsAreCountedAndGatherable) {
  sim::run(8, [](sim::comm& c) {
    comm_world world(c, 4, scheme_kind::nlnr);
    ygm::container::bag<std::uint64_t> b(world);
    for (int i = 0; i < 100; ++i) {
      b.async_insert(static_cast<std::uint64_t>(c.rank()) * 1000 +
                     static_cast<std::uint64_t>(i));
    }
    b.wait_empty();
    EXPECT_EQ(b.global_size(), 800u);

    auto all = b.gather_all();
    ASSERT_EQ(all.size(), 800u);
    std::sort(all.begin(), all.end());
    EXPECT_TRUE(std::adjacent_find(all.begin(), all.end()) == all.end())
        << "an item was duplicated or lost";
  });
}

TEST(Bag, SpreadsLoadAcrossRanks) {
  sim::run(8, [](sim::comm& c) {
    comm_world world(c, 2, scheme_kind::node_remote);
    ygm::container::bag<int> b(world);
    for (int i = 0; i < 500; ++i) b.async_insert(i);
    b.wait_empty();
    // 4000 items over 8 ranks: each shard should be within 3x of fair share.
    EXPECT_GT(b.local_size(), 500u / 3);
    EXPECT_LT(b.local_size(), 3u * 500u);
    c.barrier();
  });
}

TEST(Bag, LocalInsertSkipsCommunication) {
  sim::run(2, [](sim::comm& c) {
    comm_world world(c, 1, scheme_kind::no_route);
    ygm::container::bag<std::string> b(world);
    b.local_insert("mine");
    b.wait_empty();
    EXPECT_EQ(b.local_size(), 1u);
    EXPECT_EQ(b.global_size(), 2u);
  });
}

// ----------------------------------------------------------- counting_set

TEST(CountingSet, CountsDuplicatesAcrossRanks) {
  sim::run(8, [](sim::comm& c) {
    comm_world world(c, 4, scheme_kind::node_local);
    ygm::container::counting_set<std::string> cs(world);
    // Every rank inserts "common" 10 times and a private key once.
    for (int i = 0; i < 10; ++i) cs.async_insert("common");
    cs.async_insert("rank-" + std::to_string(c.rank()));
    cs.wait_empty();

    EXPECT_EQ(cs.global_total(), 8u * 10 + 8);
    EXPECT_EQ(cs.global_unique(), 1u + 8);

    const auto top = cs.top_k(1);
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(top[0].first, "common");
    EXPECT_EQ(top[0].second, 80u);
  });
}

TEST(CountingSet, TopKIsIdenticalOnEveryRank) {
  sim::run(4, [](sim::comm& c) {
    comm_world world(c, 2, scheme_kind::nlnr);
    ygm::container::counting_set<std::uint64_t> cs(world);
    // Key k gets k inserts (spread over ranks).
    for (std::uint64_t k = 1; k <= 20; ++k) {
      for (std::uint64_t i = 0; i < k; ++i) {
        if (static_cast<int>(i % static_cast<std::uint64_t>(c.size())) ==
            c.rank()) {
          cs.async_insert(k);
        }
      }
    }
    cs.wait_empty();
    const auto top = cs.top_k(3);
    ASSERT_EQ(top.size(), 3u);
    EXPECT_EQ(top[0], (std::pair<std::uint64_t, std::uint64_t>{20, 20}));
    EXPECT_EQ(top[1], (std::pair<std::uint64_t, std::uint64_t>{19, 19}));
    EXPECT_EQ(top[2], (std::pair<std::uint64_t, std::uint64_t>{18, 18}));
  });
}

// -------------------------------------------------------------------- map

TEST(Map, InsertAndGetRoundTrip) {
  sim::run(8, [](sim::comm& c) {
    comm_world world(c, 4, scheme_kind::node_remote);
    ygm::container::map<std::string, std::uint64_t> m(world);
    m.async_insert("key-" + std::to_string(c.rank()),
                   static_cast<std::uint64_t>(c.rank()) * 7);
    m.wait_empty();
    EXPECT_EQ(m.global_size(), 8u);

    // Every rank reads every key.
    std::map<std::string, std::uint64_t> got;
    int misses = 0;
    for (int r = 0; r < c.size(); ++r) {
      m.async_get("key-" + std::to_string(r),
                  [&](const std::string& k, std::optional<std::uint64_t> v) {
                    if (v) {
                      got[k] = *v;
                    } else {
                      ++misses;
                    }
                  });
    }
    m.async_get("absent", [&](const std::string&,
                              std::optional<std::uint64_t> v) {
      if (!v) ++misses;
    });
    m.wait_empty();
    EXPECT_EQ(misses, 1);
    ASSERT_EQ(got.size(), 8u);
    for (int r = 0; r < c.size(); ++r) {
      EXPECT_EQ(got["key-" + std::to_string(r)],
                static_cast<std::uint64_t>(r) * 7);
    }
  });
}

TEST(Map, ReducerAccumulates) {
  sim::run(4, [](sim::comm& c) {
    comm_world world(c, 2, scheme_kind::node_local);
    ygm::container::map<std::uint64_t, std::uint64_t> m(
        world, [](const std::uint64_t& a, const std::uint64_t& b) {
          return a + b;
        });
    for (std::uint64_t k = 0; k < 10; ++k) {
      m.async_reduce(k, static_cast<std::uint64_t>(c.rank()) + 1);
    }
    m.wait_empty();
    // Each key accumulated 1+2+3+4 = 10.
    std::uint64_t local_sum = 0;
    m.for_all([&](const std::uint64_t&, const std::uint64_t& v) {
      local_sum += v;
    });
    const auto total = c.allreduce(local_sum, sim::op_sum{});
    EXPECT_EQ(total, 100u);
  });
}

TEST(Map, EraseRemovesKeys) {
  sim::run(4, [](sim::comm& c) {
    comm_world world(c, 2, scheme_kind::nlnr);
    ygm::container::map<int, int> m(world);
    if (c.rank() == 0) {
      for (int k = 0; k < 20; ++k) m.async_insert(k, k);
    }
    m.wait_empty();
    if (c.rank() == 1) {
      for (int k = 0; k < 20; k += 2) m.async_erase(k);
    }
    m.wait_empty();
    EXPECT_EQ(m.global_size(), 10u);
  });
}

TEST(Map, GetCallbacksMayChainFurtherGets) {
  // Reply callbacks issuing new requests exercise the multi-round
  // wait_empty protocol.
  sim::run(4, [](sim::comm& c) {
    comm_world world(c, 2, scheme_kind::node_remote);
    ygm::container::map<int, int> m(world);
    if (c.rank() == 0) {
      for (int k = 0; k < 8; ++k) m.async_insert(k, k + 1);
    }
    m.wait_empty();

    int chain_end = -1;
    std::function<void(const int&, std::optional<int>)> chase =
        [&](const int&, std::optional<int> v) {
          if (v && *v < 8) {
            m.async_get(*v, chase);
          } else {
            chain_end = v ? *v : -2;
          }
        };
    if (c.rank() == 0) m.async_get(0, chase);
    m.wait_empty();
    if (c.rank() == 0) {
      EXPECT_EQ(chain_end, 8);  // followed 0 -> 1 -> ... -> 7 -> 8(absent? no: value 8 ends)
    }
  });
}

// ------------------------------------------------------------------ array

TEST(Array, SetAndAddResolveThroughReducer) {
  sim::run(6, [](sim::comm& c) {
    comm_world world(c, 3, scheme_kind::node_local);
    ygm::container::array<double> a(world, 50, 0.0);
    // Everyone adds 1.5 to every slot.
    for (std::uint64_t i = 0; i < 50; ++i) a.async_add(i, 1.5);
    a.wait_empty();
    const auto all = a.gather_all();
    for (const auto v : all) EXPECT_DOUBLE_EQ(v, 9.0);

    if (c.rank() == 0) a.async_set(7, -1.0);
    a.wait_empty();
    EXPECT_DOUBLE_EQ(a.gather_all()[7], -1.0);
  });
}

TEST(Array, CustomReducerTakesMax) {
  sim::run(4, [](sim::comm& c) {
    comm_world world(c, 2, scheme_kind::nlnr);
    ygm::container::array<int> a(
        world, 10, 0, [](const int& x, const int& y) { return std::max(x, y); });
    for (std::uint64_t i = 0; i < 10; ++i) {
      a.async_add(i, c.rank() * 100 + static_cast<int>(i));
    }
    a.wait_empty();
    const auto all = a.gather_all();
    for (std::uint64_t i = 0; i < 10; ++i) {
      EXPECT_EQ(all[i], 300 + static_cast<int>(i));
    }
  });
}

TEST(Array, RejectsOutOfRangeIndex) {
  sim::run(2, [](sim::comm& c) {
    comm_world world(c, 1, scheme_kind::no_route);
    ygm::container::array<int> a(world, 5);
    EXPECT_THROW(a.async_set(5, 1), ygm::error);
    a.wait_empty();
  });
}

// ----------------------------------------------------------- disjoint_set

TEST(DisjointSet, UnionsMergeAcrossRanks) {
  sim::run(8, [](sim::comm& c) {
    comm_world world(c, 4, scheme_kind::node_remote);
    ygm::container::disjoint_set ds(world, 100);
    EXPECT_EQ(ds.num_sets(), 100u);

    // Chain 0-1-2-...-49 built collaboratively (each rank a stripe).
    for (std::uint64_t v = 0; v + 1 < 50; ++v) {
      if (static_cast<int>(v % static_cast<std::uint64_t>(c.size())) ==
          c.rank()) {
        ds.async_union(v, v + 1);
      }
    }
    ds.wait_empty();
    EXPECT_EQ(ds.num_sets(), 51u);  // one big set + 50 singletons

    ds.compress();
    // After compression every member of the chain is labelled 0.
    const auto& part = ds.partition();
    for (std::uint64_t j = 0; j < ds.local_parents().size(); ++j) {
      const std::uint64_t id = part.global_id(c.rank(), j);
      EXPECT_EQ(ds.local_parents()[j], id < 50 ? 0u : id);
    }
  });
}

TEST(DisjointSet, RandomUnionsMatchSerialOracle) {
  const std::uint64_t n = 200;
  // Shared random edge set.
  ygm::xoshiro256 rng(1234);
  std::vector<ygm::graph::edge> edges;
  for (int i = 0; i < 150; ++i) {
    edges.push_back({rng.below(n), rng.below(n)});
  }
  const auto oracle =
      ygm::apps::connected_components_reference(n, edges);

  sim::run(6, [&](sim::comm& c) {
    comm_world world(c, 3, scheme_kind::nlnr);
    ygm::container::disjoint_set ds(world, n);
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (static_cast<int>(i % static_cast<std::size_t>(c.size())) ==
          c.rank()) {
        ds.async_union(edges[i].src, edges[i].dst);
      }
    }
    ds.wait_empty();
    ds.compress();
    const auto& part = ds.partition();
    for (std::uint64_t j = 0; j < ds.local_parents().size(); ++j) {
      const std::uint64_t id = part.global_id(c.rank(), j);
      EXPECT_EQ(ds.local_parents()[j], oracle[id]) << "vertex " << id;
    }
  });
}

TEST(DisjointSet, SelfUnionAndRepeatsAreIdempotent) {
  sim::run(4, [](sim::comm& c) {
    comm_world world(c, 2, scheme_kind::node_local);
    ygm::container::disjoint_set ds(world, 10);
    for (int rep = 0; rep < 5; ++rep) {
      ds.async_union(3, 3);
      ds.async_union(2, 7);
      ds.async_union(7, 2);
    }
    ds.wait_empty();
    EXPECT_EQ(ds.num_sets(), 9u);
    EXPECT_THROW(ds.async_union(0, 10), ygm::error);
    ds.wait_empty();
  });
}

}  // namespace
// ------------------------------------------------------------------- set
// (appended with the container)
#include "containers/set.hpp"

namespace {

TEST(Set, InsertContainsEraseLifecycle) {
  sim::run(6, [](sim::comm& c) {
    comm_world world(c, 3, scheme_kind::node_remote);
    ygm::container::set<std::string> s(world);
    s.async_insert("shared");
    s.async_insert("rank-" + std::to_string(c.rank()));
    s.wait_empty();
    // Duplicates collapse: 1 shared + 6 per-rank keys.
    EXPECT_EQ(s.global_size(), 7u);

    int found = 0;
    int missing = 0;
    s.async_contains("shared", [&](const std::string&, bool f) {
      f ? ++found : ++missing;
    });
    s.async_contains("absent", [&](const std::string&, bool f) {
      f ? ++found : ++missing;
    });
    s.wait_empty();
    EXPECT_EQ(found, 1);
    EXPECT_EQ(missing, 1);

    if (c.rank() == 0) s.async_erase("shared");
    s.wait_empty();
    EXPECT_EQ(s.global_size(), 6u);
  });
}

TEST(Set, ContainsCallbackMayChainInserts) {
  sim::run(4, [](sim::comm& c) {
    comm_world world(c, 2, scheme_kind::nlnr);
    ygm::container::set<int> s(world);
    if (c.rank() == 0) s.async_insert(0);
    s.wait_empty();

    // Chase: if k exists, insert k+1 and check it (stop at 5).
    std::function<void(const int&, bool)> chase = [&](const int& k, bool f) {
      if (f && k < 5) {
        s.async_insert(k + 1);
        s.async_contains(k + 1, chase);
      }
    };
    if (c.rank() == 0) s.async_contains(0, chase);
    s.wait_empty();
    EXPECT_EQ(s.global_size(), 6u);  // 0..5
  });
}

TEST(Set, ConcurrentInsertsFromAllRanksConverge) {
  sim::run(8, [](sim::comm& c) {
    comm_world world(c, 4, scheme_kind::node_local);
    ygm::container::set<std::uint64_t> s(world, 64);
    ygm::xoshiro256 rng(6 + static_cast<std::uint64_t>(c.rank()));
    for (int i = 0; i < 200; ++i) s.async_insert(rng.below(100));
    s.wait_empty();
    // All 100 keys almost surely hit; at minimum the size is bounded by it.
    EXPECT_LE(s.global_size(), 100u);
    EXPECT_GT(s.global_size(), 90u);
  });
}

}  // namespace
