// Fuzz and hostile-input tests: the serialization archives and the packet
// reader must reject malformed bytes with ygm::error — never crash, hang,
// or read out of bounds — and the mailbox must survive degenerate message
// shapes (empty payloads, messages far larger than the coalescing
// capacity).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/packet.hpp"
#include "core/ygm.hpp"

namespace {

namespace sim = ygm::mpisim;
using ygm::core::comm_world;
using ygm::core::mailbox;
using ygm::routing::scheme_kind;
using ygm::routing::topology;

// ----------------------------------------------------------- archive fuzz

template <class T>
void expect_parse_or_throw(std::span<const std::byte> bytes) {
  try {
    (void)ygm::ser::from_bytes<T>(bytes);
  } catch (const ygm::error&) {
    // rejection is fine; crashing is not
  }
}

class ArchiveFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArchiveFuzz, RandomBytesNeverCrashDeserialization) {
  ygm::xoshiro256 rng(GetParam());
  for (int iter = 0; iter < 300; ++iter) {
    std::vector<std::byte> junk(rng.below(64));
    for (auto& b : junk) b = static_cast<std::byte>(rng() & 0xff);
    const std::span<const std::byte> s(junk.data(), junk.size());
    expect_parse_or_throw<std::string>(s);
    expect_parse_or_throw<std::vector<std::uint64_t>>(s);
    expect_parse_or_throw<std::map<std::string, std::uint32_t>>(s);
    expect_parse_or_throw<std::vector<std::vector<std::string>>>(s);
  }
}

TEST_P(ArchiveFuzz, TruncatedValidArchivesAlwaysThrow) {
  ygm::xoshiro256 rng(GetParam() + 1000);
  for (int iter = 0; iter < 100; ++iter) {
    std::map<std::string, std::vector<std::uint64_t>> value;
    const std::size_t keys = 1 + rng.below(4);
    for (std::size_t i = 0; i < keys; ++i) {
      value[std::string(1 + rng.below(8), static_cast<char>('a' + i))] =
          std::vector<std::uint64_t>(rng.below(6), rng());
    }
    const auto bytes = ygm::ser::to_bytes(value);
    // Any strict prefix must throw (the encoding has no padding).
    const std::size_t cut = rng.below(bytes.size());
    using value_type = std::map<std::string, std::vector<std::uint64_t>>;
    const auto parse_prefix = [&] {
      (void)ygm::ser::from_bytes<value_type>({bytes.data(), cut});
    };
    EXPECT_THROW(parse_prefix(), ygm::error);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArchiveFuzz, ::testing::Values(1, 2, 3, 4));

// ------------------------------------------------------------ packet fuzz

TEST(PacketFuzz, RandomBytesNeverCrashReader) {
  ygm::xoshiro256 rng(77);
  for (int iter = 0; iter < 500; ++iter) {
    std::vector<std::byte> junk(rng.below(48));
    for (auto& b : junk) b = static_cast<std::byte>(rng() & 0xff);
    ygm::core::packet_reader reader({junk.data(), junk.size()});
    try {
      while (!reader.done()) {
        const auto rec = reader.next();
        // Touch the payload to catch bad spans under ASan-like scrutiny.
        std::uint64_t sum = 0;
        for (const auto b : rec.payload) sum += static_cast<std::uint8_t>(b);
        (void)sum;
      }
    } catch (const ygm::error&) {
    }
  }
}

TEST(PacketFuzz, WellFormedPacketsAlwaysRoundTrip) {
  ygm::xoshiro256 rng(88);
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<std::byte> packet;
    std::vector<std::pair<int, std::size_t>> expected;  // (addr, len)
    const std::size_t records = rng.below(10);
    for (std::size_t i = 0; i < records; ++i) {
      const int addr = static_cast<int>(rng.below(1 << 20));
      std::vector<std::byte> payload(rng.below(40));
      ygm::core::packet_append(packet, (rng() & 1) != 0, addr,
                               {payload.data(), payload.size()});
      expected.emplace_back(addr, payload.size());
    }
    ygm::core::packet_reader reader({packet.data(), packet.size()});
    std::size_t i = 0;
    while (!reader.done()) {
      const auto rec = reader.next();
      ASSERT_LT(i, expected.size());
      EXPECT_EQ(rec.addr, expected[i].first);
      EXPECT_EQ(rec.payload.size(), expected[i].second);
      ++i;
    }
    EXPECT_EQ(i, expected.size());
  }
}

// --------------------------------------------------- degenerate messages

struct empty_msg {
  bool operator==(const empty_msg&) const = default;
  template <class Archive>
  void serialize(Archive&) {}
};

TEST(MailboxEdge, EmptyPayloadMessagesDeliver) {
  const topology topo(2, 2);
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, scheme_kind::nlnr);
    int got = 0;
    mailbox<empty_msg> mb(world, [&](const empty_msg&) { ++got; }, 64);
    for (int d = 0; d < c.size(); ++d) {
      if (d != c.rank()) mb.send(d, empty_msg{});
    }
    mb.send_bcast(empty_msg{});
    mb.wait_empty();
    EXPECT_EQ(got, 2 * (c.size() - 1));
  });
}

TEST(MailboxEdge, MessagesLargerThanCapacityStillFlow) {
  // Capacity is a flush trigger, not a size limit: a message bigger than
  // the whole mailbox must be shipped in its own oversized packet.
  const topology topo(2, 2);
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, scheme_kind::node_remote);
    std::size_t got_bytes = 0;
    mailbox<std::string> mb(
        world, [&](const std::string& s) { got_bytes += s.size(); },
        /*capacity=*/128);
    const std::string big(10000, 'z');
    const int dest = (c.rank() + 1) % c.size();
    mb.send(dest, big);
    mb.wait_empty();
    EXPECT_EQ(got_bytes, big.size());
  });
}

TEST(MailboxEdge, ManySmallMessagesUnderTinyCapacity) {
  // Worst-case flush churn: capacity 1 forces an exchange per record, across
  // a routing scheme with forwarding.
  const topology topo(2, 2);
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, scheme_kind::nlnr);
    std::uint64_t got = 0;
    mailbox<std::uint8_t> mb(world, [&](const std::uint8_t& v) { got += v; },
                             1);
    for (int i = 0; i < 200; ++i) {
      mb.send((c.rank() + 1 + i % (c.size() - 1)) % c.size(), 1);
    }
    mb.wait_empty();
    const auto total = c.allreduce(got, sim::op_sum{});
    EXPECT_EQ(total, 200u * static_cast<std::uint64_t>(c.size()));
  });
}

TEST(MailboxEdge, InterleavedSendAndBcastStreams) {
  const topology topo(2, 3);
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, scheme_kind::node_local);
    std::uint64_t p2p = 0;
    std::uint64_t bc = 0;
    mailbox<std::pair<bool, std::uint64_t>> mb(
        world,
        [&](const std::pair<bool, std::uint64_t>& m) {
          (m.first ? bc : p2p) += m.second;
        },
        96);
    ygm::xoshiro256 rng(4 + static_cast<std::uint64_t>(c.rank()));
    for (int i = 0; i < 60; ++i) {
      if (rng.below(4) == 0) {
        mb.send_bcast({true, 1});
      } else {
        mb.send(static_cast<int>(rng.below(
                    static_cast<std::uint64_t>(c.size()))),
                {false, 1});
      }
    }
    mb.wait_empty();
    const auto sent_bcasts = c.allreduce(mb.stats().app_bcasts, sim::op_sum{});
    const auto got_bc = c.allreduce(bc, sim::op_sum{});
    EXPECT_EQ(got_bc,
              sent_bcasts * static_cast<std::uint64_t>(c.size() - 1));
    const auto sent_p2p = c.allreduce(mb.stats().app_sends, sim::op_sum{});
    const auto got_p2p = c.allreduce(p2p, sim::op_sum{});
    EXPECT_EQ(got_p2p, sent_p2p);
  });
}

}  // namespace
