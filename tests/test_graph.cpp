// Tests for the graph substrate (graph/): generators, partitioning,
// scrambling, delegate selection.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "core/ygm.hpp"
#include "graph/delegates.hpp"
#include "graph/generators.hpp"
#include "graph/rmat.hpp"

namespace {

namespace sim = ygm::mpisim;
using ygm::graph::delegate_set;
using ygm::graph::edge;
using ygm::graph::erdos_renyi_generator;
using ygm::graph::rmat_generator;
using ygm::graph::rmat_params;
using ygm::graph::round_robin_partition;
using ygm::graph::vertex_id;

// ----------------------------------------------------------- partitioning

TEST(Partition, RoundRobinMappingRoundTrips) {
  const round_robin_partition part{5};
  for (vertex_id v = 0; v < 100; ++v) {
    const int o = part.owner(v);
    EXPECT_GE(o, 0);
    EXPECT_LT(o, 5);
    EXPECT_EQ(part.global_id(o, part.local_index(v)), v);
  }
}

TEST(Partition, LocalCountsSumToTotal) {
  for (int p : {1, 3, 7}) {
    const round_robin_partition part{p};
    for (std::uint64_t n : {0ULL, 1ULL, 13ULL, 100ULL}) {
      std::uint64_t sum = 0;
      for (int r = 0; r < p; ++r) sum += part.local_count(r, n);
      EXPECT_EQ(sum, n);
    }
  }
}

TEST(Partition, LocalIndicesAreDense) {
  const round_robin_partition part{4};
  const std::uint64_t n = 19;
  for (int r = 0; r < 4; ++r) {
    const std::uint64_t cnt = part.local_count(r, n);
    for (std::uint64_t i = 0; i < cnt; ++i) {
      const vertex_id v = part.global_id(r, i);
      EXPECT_LT(v, n);
      EXPECT_EQ(part.owner(v), r);
      EXPECT_EQ(part.local_index(v), i);
    }
  }
}

// ------------------------------------------------------------- generators

TEST(ErdosRenyi, SliceDistributesEdgesExactly) {
  for (std::uint64_t m : {0ULL, 1ULL, 10ULL, 1000003ULL}) {
    for (int p : {1, 4, 7}) {
      std::uint64_t sum = 0;
      for (int r = 0; r < p; ++r) {
        sum += erdos_renyi_generator::slice(m, r, p);
      }
      EXPECT_EQ(sum, m);
    }
  }
}

TEST(ErdosRenyi, IsDeterministicPerRank) {
  const erdos_renyi_generator g1(1000, 500, 7, 2, 4);
  const erdos_renyi_generator g2(1000, 500, 7, 2, 4);
  std::vector<edge> e1, e2;
  g1.for_each([&](const edge& e) { e1.push_back(e); });
  g2.for_each([&](const edge& e) { e2.push_back(e); });
  EXPECT_EQ(e1, e2);
  EXPECT_EQ(e1.size(), g1.local_edge_count());
}

TEST(ErdosRenyi, DifferentRanksProduceDifferentStreams) {
  const erdos_renyi_generator g0(1000, 500, 7, 0, 4);
  const erdos_renyi_generator g1(1000, 500, 7, 1, 4);
  std::vector<edge> e0, e1;
  g0.for_each([&](const edge& e) { e0.push_back(e); });
  g1.for_each([&](const edge& e) { e1.push_back(e); });
  EXPECT_NE(e0, e1);
}

TEST(ErdosRenyi, EndpointsInRangeAndRoughlyUniform) {
  const vertex_id n = 64;
  const erdos_renyi_generator g(n, 64000, 11, 0, 1);
  std::vector<std::uint64_t> hist(n, 0);
  g.for_each([&](const edge& e) {
    ASSERT_LT(e.src, n);
    ASSERT_LT(e.dst, n);
    ++hist[e.src];
    ++hist[e.dst];
  });
  // 128000 endpoint samples over 64 bins: expect 2000 each, allow 4x sigma.
  for (auto h : hist) {
    EXPECT_GT(h, 1700u);
    EXPECT_LT(h, 2300u);
  }
}

// ----------------------------------------------------------------- RMAT

TEST(Rmat, ScrambleIsABijection) {
  for (int scale : {1, 4, 10, 16}) {
    const vertex_id n = vertex_id{1} << scale;
    std::vector<bool> seen(n, false);
    for (vertex_id v = 0; v < n; ++v) {
      const vertex_id s = ygm::graph::scramble_vertex(v, scale);
      ASSERT_LT(s, n);
      ASSERT_FALSE(seen[s]) << "collision at scale " << scale;
      seen[s] = true;
    }
  }
}

TEST(Rmat, IsDeterministicAndInRange) {
  const rmat_generator g1(10, 5000, rmat_params::graph500(), 3, 1, 3);
  const rmat_generator g2(10, 5000, rmat_params::graph500(), 3, 1, 3);
  std::vector<edge> e1, e2;
  g1.for_each([&](const edge& e) {
    ASSERT_LT(e.src, g1.num_vertices());
    ASSERT_LT(e.dst, g1.num_vertices());
    e1.push_back(e);
  });
  g2.for_each([&](const edge& e) { e2.push_back(e); });
  EXPECT_EQ(e1, e2);
}

TEST(Rmat, RejectsInvalidParameters) {
  EXPECT_THROW(rmat_generator(0, 10, rmat_params::graph500(), 1, 0, 1),
               ygm::error);
  rmat_params bad;
  bad.a = 0.9;  // sums to 1.33
  EXPECT_THROW(rmat_generator(8, 10, bad, 1, 0, 1), ygm::error);
}

TEST(Rmat, SkewedParametersProduceHubs) {
  // Graph500 parameters must yield a far heavier maximum degree than the
  // uniform setting on the same vertex/edge budget.
  const int scale = 12;
  const std::uint64_t edges = 16ULL << scale;
  const auto max_degree = [&](const rmat_params& p) {
    const rmat_generator g(scale, edges, p, 5, 0, 1);
    std::vector<std::uint64_t> deg(g.num_vertices(), 0);
    g.for_each([&](const edge& e) {
      ++deg[e.src];
      ++deg[e.dst];
    });
    return *std::max_element(deg.begin(), deg.end());
  };
  const auto skewed = max_degree(rmat_params::graph500());
  const auto uniform = max_degree(rmat_params::uniform());
  EXPECT_GT(skewed, 4 * uniform);
  const auto web = max_degree(rmat_params::webgraph_like());
  EXPECT_GT(web, skewed);  // the webgraph stand-in is even more skewed
}

TEST(Rmat, UniformParametersMatchErdosRenyiStatistics) {
  const int scale = 10;
  const vertex_id n = vertex_id{1} << scale;
  const std::uint64_t edges = 64 * n;
  const rmat_generator g(scale, edges, rmat_params::uniform(), 5, 0, 1);
  std::vector<std::uint64_t> deg(n, 0);
  g.for_each([&](const edge& e) {
    ++deg[e.src];
    ++deg[e.dst];
  });
  // Mean endpoint count 128 per vertex; a uniform graph keeps the max within
  // a small factor of the mean.
  const auto mx = *std::max_element(deg.begin(), deg.end());
  EXPECT_LT(mx, 128 * 3);
}

TEST(Rmat, ExpectedMaxDegreeGrowsWithScale) {
  const auto p = rmat_params::graph500();
  const double d20 = ygm::graph::expected_max_degree(20, 16ULL << 20, p);
  const double d24 = ygm::graph::expected_max_degree(24, 16ULL << 24, p);
  EXPECT_GT(d24, d20);
  // Growth factor per scale step is 2*(a+b) = 1.52.
  EXPECT_NEAR(d24 / d20, std::pow(2 * (p.a + p.b), 4), 1e-6);
}

// -------------------------------------------------------------- delegates

TEST(Delegates, SetMapsIdsToDenseSlots) {
  const delegate_set d({3, 17, 42});
  EXPECT_EQ(d.size(), 3u);
  EXPECT_TRUE(d.contains(17));
  EXPECT_FALSE(d.contains(4));
  EXPECT_EQ(d.slot(3), 0u);
  EXPECT_EQ(d.slot(42), 2u);
  EXPECT_EQ(d.id_of_slot(1), 17u);
}

TEST(Delegates, RejectsUnsortedOrDuplicateIds) {
  EXPECT_THROW(delegate_set({5, 3}), ygm::error);
  EXPECT_THROW(delegate_set({3, 3}), ygm::error);
}

TEST(Delegates, EmptySetBehaves) {
  const delegate_set d;
  EXPECT_EQ(d.size(), 0u);
  EXPECT_FALSE(d.contains(0));
}

TEST(Delegates, SelectionAgreesAcrossRanks) {
  sim::run(4, [](sim::comm& c) {
    ygm::core::comm_world world(c, 2, ygm::routing::scheme_kind::node_local);
    const round_robin_partition part{c.size()};
    const std::uint64_t n = 40;

    // Synthetic degrees: vertex v has degree v.
    std::vector<std::uint64_t> degrees(part.local_count(c.rank(), n));
    for (std::uint64_t i = 0; i < degrees.size(); ++i) {
      degrees[i] = part.global_id(c.rank(), i);
    }
    const auto d = ygm::graph::select_delegates(world, degrees, part, 30);

    // Vertices 30..39 qualify, on every rank identically.
    ASSERT_EQ(d.size(), 10u);
    for (vertex_id v = 30; v < 40; ++v) {
      EXPECT_TRUE(d.contains(v));
      EXPECT_EQ(d.slot(v), v - 30);
    }
    EXPECT_FALSE(d.contains(29));
  });
}

TEST(Delegates, SelectionRejectsBadArguments) {
  sim::run(2, [](sim::comm& c) {
    ygm::core::comm_world world(c, 1, ygm::routing::scheme_kind::no_route);
    const round_robin_partition part{c.size()};
    EXPECT_THROW(
        ygm::graph::select_delegates(world, {}, part, 0), ygm::error);
    c.barrier();
  });
}

}  // namespace
// NOTE: appended degree-model suite (kept in this file: it is part of the
// graph substrate's statistical tooling).
#include "graph/degree_model.hpp"

namespace {

using ygm::graph::rmat_degree_model;

TEST(DegreeModel, ClassSizesSumToVertexCount) {
  const rmat_degree_model m(16, 16ULL << 16, rmat_params::graph500());
  double total = 0;
  for (int k = 0; k <= 16; ++k) total += m.class_size(k);
  EXPECT_NEAR(total, static_cast<double>(1ULL << 16), 1.0);
}

TEST(DegreeModel, EndpointMassSumsToTwiceEdges) {
  const std::uint64_t edges = 16ULL << 14;
  const rmat_degree_model m(14, edges, rmat_params::graph500());
  double mass = 0;
  for (int k = 0; k <= 14; ++k) mass += m.class_size(k) * m.class_degree(k);
  EXPECT_NEAR(mass, 2.0 * static_cast<double>(edges), 0.01 * edges);
}

TEST(DegreeModel, TailCountIsMonotoneInThreshold) {
  const rmat_degree_model m(20, 16ULL << 20, rmat_params::graph500());
  double prev = m.count_degree_at_least(1);
  for (double t = 2; t < 1e7; t *= 2) {
    const double cur = m.count_degree_at_least(t);
    EXPECT_LE(cur, prev);
    prev = cur;
  }
  EXPECT_EQ(m.count_degree_at_least(1e18), 0.0);
}

TEST(DegreeModel, PredictsEmpiricalTailWithinSmallFactor) {
  const int scale = 12;
  const std::uint64_t edges = 16ULL << scale;
  const rmat_generator g(scale, edges, rmat_params::graph500(), 21, 0, 1);
  std::vector<std::uint64_t> deg(g.num_vertices(), 0);
  g.for_each([&](const edge& e) {
    ++deg[e.src];
    ++deg[e.dst];
  });
  const rmat_degree_model m(scale, edges, rmat_params::graph500());
  for (const double t : {256.0, 1024.0}) {
    const double predicted = m.count_degree_at_least(t);
    double actual = 0;
    for (auto d : deg) {
      if (static_cast<double>(d) >= t) ++actual;
    }
    EXPECT_GT(actual, predicted / 3) << "threshold " << t;
    EXPECT_LT(actual, predicted * 3) << "threshold " << t;
  }
}

TEST(DegreeModel, UniformParametersHaveNoHeavyTail) {
  const rmat_degree_model m(20, 16ULL << 20, rmat_params::uniform());
  // Mean endpoint count is 32; a uniform graph has essentially no vertices
  // at 64x the mean.
  EXPECT_LT(m.count_degree_at_least(32.0 * 64), 1.0);
}

}  // namespace
