// Tests for the zero-copy mailbox hot path (docs/PERF.md):
//
//   * byte-identity fuzz of packet_append_inplace against the copy-based
//     packet_append across addresses (incl. the trace escape), payload
//     sizes straddling every varint width boundary, bcast flags, and
//     length-slot hints (matching, too narrow, too wide);
//   * buffer_pool unit behaviour: hit/miss accounting, the bounded
//     high-water retention that frees oversized buffers, the max_pooled
//     cap, and the sliding-window decay of the retention bound;
//   * a counting operator-new hook asserting the warm steady-state
//     send->flush->drain cycle performs ~zero heap allocations per
//     message;
//   * a 16-seed chaos sweep cross-checking that pooling never recycles a
//     buffer that still backs an in-flight span (payload corruption or
//     duplicate/lost deliveries would trip the delivery ledger).
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "core/buffer_pool.hpp"
#include "core/hybrid_mailbox.hpp"
#include "core/invariants.hpp"
#include "core/packet.hpp"
#include "core/ygm.hpp"
#include "mpisim/chaos.hpp"
#include "ser/serialize.hpp"

// ------------------------------------------------- counting operator new
//
// Global replacement, counting only while the calling thread opted in —
// gtest bookkeeping and the other rank threads never perturb a window.
// POD thread_locals only (no dynamic TLS init inside operator new).
namespace hotpath_alloc {
thread_local bool counting = false;
thread_local std::uint64_t news = 0;

struct window {
  window() { news = 0; counting = true; }
  ~window() { counting = false; }
  std::uint64_t count() const { return news; }
};
}  // namespace hotpath_alloc

// GCC pairs its builtin knowledge of new[]/free and flags the (correct,
// matched) malloc-backed replacements below.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t n) {
  if (hotpath_alloc::counting) ++hotpath_alloc::news;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  if (hotpath_alloc::counting) ++hotpath_alloc::news;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace {

namespace sim = ygm::mpisim;
using ygm::core::buffer_pool;
using ygm::core::comm_world;
using ygm::core::hybrid_mailbox;
using ygm::core::mailbox;
using ygm::core::packet_append;
using ygm::core::packet_append_inplace;
using ygm::core::packet_reader;
using ygm::core::packet_trace_escape;
using ygm::core::run_chaos_trial;
using ygm::core::trial_config;
using ygm::routing::scheme_kind;
using ygm::routing::topology;

// ------------------------------------------------ in-place byte identity

std::vector<std::byte> fuzz_payload(std::size_t len, std::uint64_t seed) {
  std::vector<std::byte> p(len);
  std::uint64_t x = seed * 0x9E3779B97F4A7C15ULL + 1;
  for (auto& b : p) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b = static_cast<std::byte>(x & 0xFF);
  }
  return p;
}

TEST(PacketInplace, ByteIdenticalToCopyAppendAcrossTheMatrix) {
  // Lengths straddle every varint width boundary the slot patching must
  // handle; hints force the matching, too-narrow, and too-wide cases.
  const std::size_t lens[] = {0, 1, 2, 127, 128, 129, 16383, 16384, 16385};
  const int addrs[] = {0, 1, 63, 64, 1000, packet_trace_escape};
  const std::size_t hints[] = {0, 1, 127, 128, 300, 16383, 16384, 70000};

  std::uint64_t seed = 0;
  for (const std::size_t len : lens) {
    const auto payload = fuzz_payload(len, ++seed);
    for (const int addr : addrs) {
      for (const bool bcast : {false, true}) {
        std::vector<std::byte> reference;
        packet_append(reference, bcast, addr, payload);
        for (const std::size_t hint : hints) {
          std::vector<std::byte> inplace;
          const auto rec = packet_append_inplace(
              inplace, bcast, addr, hint, [&](std::vector<std::byte>& out) {
                out.insert(out.end(), payload.begin(), payload.end());
              });
          ASSERT_EQ(inplace, reference)
              << "len=" << len << " addr=" << addr << " bcast=" << bcast
              << " hint=" << hint;
          ASSERT_EQ(rec.payload_size, len);
          ASSERT_EQ(rec.payload_offset + len, inplace.size());
        }
      }
    }
  }
}

TEST(PacketInplace, MultiRecordPacketRoundTripsThroughReader) {
  // Mixed hints and sizes in one packet, then read everything back.
  std::vector<std::byte> packet;
  std::vector<std::vector<std::byte>> payloads;
  std::size_t hint = 0;
  for (std::size_t i = 0; i < 64; ++i) {
    payloads.push_back(fuzz_payload((i * 37) % 700, 100 + i));
    const auto rec = packet_append_inplace(
        packet, (i % 3) == 0, static_cast<int>(i), hint,
        [&](std::vector<std::byte>& out) {
          out.insert(out.end(), payloads.back().begin(),
                     payloads.back().end());
        });
    hint = rec.payload_size;  // the mailboxes' feedback loop
  }
  std::size_t i = 0;
  for (packet_reader r({packet.data(), packet.size()}); !r.done(); ++i) {
    const auto rec = r.next();
    ASSERT_LT(i, payloads.size());
    EXPECT_EQ(rec.addr, static_cast<int>(i));
    EXPECT_EQ(rec.is_bcast, (i % 3) == 0);
    ASSERT_EQ(rec.payload.size(), payloads[i].size());
    EXPECT_EQ(0, std::memcmp(rec.payload.data(), payloads[i].data(),
                             payloads[i].size()));
  }
  EXPECT_EQ(i, payloads.size());
}

// ----------------------------------------------------- buffer_pool units

TEST(BufferPool, HitAndMissAccounting) {
  buffer_pool pool;
  auto a = pool.acquire(256);
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.hits(), 0u);
  EXPECT_GE(a.capacity(), 256u);

  a.resize(100);
  pool.release(std::move(a));
  EXPECT_EQ(pool.pooled(), 1u);

  auto b = pool.acquire(256);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_TRUE(b.empty());          // recycled buffers come back cleared...
  EXPECT_GE(b.capacity(), 256u);   // ...with their capacity intact
  EXPECT_EQ(pool.pooled(), 0u);
  EXPECT_EQ(pool.pooled_bytes(), 0u);  // the hit gave its capacity back
}

TEST(BufferPool, OversizedBuffersAreFreedNotPooled) {
  buffer_pool pool;
  // Establish a small working set: released sizes ~1 KiB.
  for (int i = 0; i < 4; ++i) {
    auto buf = pool.acquire();
    buf.resize(1024);
    pool.release(std::move(buf));
  }
  EXPECT_GE(pool.retain_bound(), 2 * buffer_pool::min_retain_bytes);

  // A buffer whose capacity blows past 2x the high-water must be dropped.
  std::vector<std::byte> big;
  big.reserve(4 * pool.retain_bound());
  const std::size_t before = pool.pooled();
  pool.release(std::move(big));
  EXPECT_EQ(pool.pooled(), before);  // freed, not pooled
}

TEST(BufferPool, RetentionBoundDecaysAfterTwoWindows) {
  buffer_pool pool;
  // One huge release raises the high-water (and thus the bound)...
  std::vector<std::byte> huge(1 << 20);
  pool.release(std::move(huge));
  const std::size_t raised = pool.retain_bound();
  EXPECT_GE(raised, std::size_t{2} << 20);
  // ...but after two full windows of small releases it must decay back.
  for (std::uint32_t i = 0; i < 2 * buffer_pool::window_releases; ++i) {
    std::vector<std::byte> small(64);
    pool.release(std::move(small));
  }
  EXPECT_EQ(pool.retain_bound(), 2 * buffer_pool::min_retain_bytes);
}

TEST(BufferPool, MaxPooledCapsRetention) {
  buffer_pool pool;
  for (std::size_t i = 0; i < buffer_pool::max_pooled + 16; ++i) {
    std::vector<std::byte> buf(128);
    pool.release(std::move(buf));
  }
  EXPECT_EQ(pool.pooled(), buffer_pool::max_pooled);
  pool.trim();
  EXPECT_EQ(pool.pooled(), 0u);
  EXPECT_EQ(pool.pooled_bytes(), 0u);
}

TEST(BufferPool, ByteBudgetCapsRetention) {
  buffer_pool pool;
  constexpr std::size_t mib = std::size_t{1} << 20;
  // Each release feeds the high-water *before* the drop check, so 1 MiB
  // buffers pass the size bound; only the byte budget stops retention —
  // well before the (large) count cap would.
  for (int i = 0; i < 17; ++i) {
    pool.release(std::vector<std::byte>(mib));
  }
  EXPECT_GE(pool.pooled(), 1u);
  EXPECT_LT(pool.pooled(), 16u);
  EXPECT_LE(pool.pooled_bytes(), buffer_pool::max_retained_bytes);
  EXPECT_GT(pool.drops(), 0u);
}

// ------------------------------------- steady-state allocation behaviour

/// Allocations counted on rank 0's thread across `msgs` all-to-all sends
/// (plus the flush/drain/forward work they trigger) after a warm-up pass
/// that populates the pools and grows every buffer to its working size.
std::uint64_t steady_state_allocs(int msgs) {
  std::uint64_t allocs = 0;
  const topology topo(2, 2);
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, scheme_kind::nlnr);
    std::uint64_t sink = 0;
    mailbox<std::uint64_t> mb(
        world, [&](const std::uint64_t& v) { sink += v; }, 2048);

    auto all_to_all = [&](int rounds) {
      for (int i = 0; i < rounds; ++i) {
        for (int d = 0; d < c.size(); ++d) {
          if (d != c.rank()) mb.send(d, static_cast<std::uint64_t>(i));
        }
      }
    };

    // Warm-up: grow the coalescing buffers, seed every rank's pool, let
    // the termination detector allocate its state.
    all_to_all(msgs);
    mb.wait_empty();
    c.barrier();

    if (c.rank() == 0) {
      hotpath_alloc::window w;
      all_to_all(msgs);
      mb.flush();
      mb.poll();
      allocs = w.count();
    } else {
      all_to_all(msgs);
      mb.flush();
      mb.poll();
    }
    mb.wait_empty();
    c.barrier();
  });
  return allocs;
}

TEST(SteadyState, WarmHotPathIsAllocationFreePerMessage) {
  constexpr int kMsgs = 2000;
  const std::uint64_t allocs = steady_state_allocs(kMsgs);
  const std::uint64_t sends = static_cast<std::uint64_t>(kMsgs) * 3;  // 3 peers
  // Residual allocations (mail_slot deque block churn, occasional pool
  // refills when traffic is momentarily asymmetric) must be noise, not
  // per-message cost: well under 2% of messages sent. Before pooling and
  // in-place serialization this ratio was > 1.
  EXPECT_LT(static_cast<double>(allocs), 0.02 * static_cast<double>(sends))
      << allocs << " allocations across " << sends << " sends";
}

// -------------------------------------- pooling vs in-flight spans (chaos)

/// 16 seeds x {mailbox, hybrid}: the delivery ledger checks every payload
/// byte-for-byte at quiescence, so a pooled buffer recycled while a span
/// into it was still in flight (the forward path holds spans into received
/// packets; bcast fan-out holds spans into sibling buffers) shows up as
/// corruption, duplication, or loss.
template <template <class> class MailboxT>
std::vector<std::string> pooled_trial(std::uint64_t seed) {
  trial_config t;
  t.seed = seed;
  t.scheme = static_cast<scheme_kind>(seed % 4);
  t.nodes = 2 + static_cast<int>(seed % 2);
  t.cores = 2;
  t.capacity = (seed % 3 == 0) ? 48 : 1024;  // tiny: flush mid-fan-out
  t.timed = (seed % 5) == 0;
  t.msgs_per_rank = 40;
  t.bcasts_per_rank = 4;
  t.epochs = 2;
  t.chaos = sim::chaos_config::heavy(seed);

  std::vector<std::string> all;
  sim::run(t.num_ranks(), t.chaos, [&](sim::comm& c) {
    const auto local = run_chaos_trial<MailboxT>(c, t);
    const auto gathered = c.gather(local, 0);
    if (c.rank() == 0) {
      for (const auto& per_rank : gathered) {
        all.insert(all.end(), per_rank.begin(), per_rank.end());
      }
    }
  });
  return all;
}

TEST(PoolingChaos, RecycledBuffersNeverAliasInFlightSpans) {
  for (std::uint64_t seed = 100; seed < 116; ++seed) {
    const auto v_mb = pooled_trial<mailbox>(seed);
    EXPECT_TRUE(v_mb.empty()) << "mailbox seed " << seed << ": " << v_mb[0];
    const auto v_hy = pooled_trial<hybrid_mailbox>(seed);
    EXPECT_TRUE(v_hy.empty()) << "hybrid seed " << seed << ": " << v_hy[0];
  }
}

}  // namespace
