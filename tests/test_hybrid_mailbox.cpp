// Tests for the hybrid MPI+threads mailbox (core/hybrid_mailbox.hpp,
// paper §VII): identical semantics to core::mailbox with shared-memory
// local handoff, exercised across schemes and machine shapes and compared
// head-to-head against the MPI-only mailbox.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/hybrid_mailbox.hpp"
#include "core/ygm.hpp"

namespace {

namespace sim = ygm::mpisim;
using ygm::core::comm_world;
using ygm::core::hybrid_mailbox;
using ygm::core::mailbox;
using ygm::routing::scheme_kind;
using ygm::routing::topology;

struct machine_case {
  scheme_kind kind;
  int nodes;
  int cores;
  std::size_t capacity;
};

std::vector<machine_case> machine_cases() {
  std::vector<machine_case> cases;
  for (auto kind : ygm::routing::all_schemes) {
    for (auto [n, c] : {std::pair{1, 4}, {2, 2}, {2, 4}, {4, 2}, {3, 3}}) {
      cases.push_back({kind, n, c, 1024});
    }
    cases.push_back({kind, 2, 4, 1});
  }
  return cases;
}

class HybridMachines : public ::testing::TestWithParam<machine_case> {};

TEST_P(HybridMachines, RandomTrafficDeliversExactlyOnce) {
  const auto& mc = GetParam();
  const topology topo(mc.nodes, mc.cores);
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, mc.kind);
    std::uint64_t recv_count = 0;
    std::uint64_t recv_sum = 0;
    hybrid_mailbox<std::uint64_t> mb(
        world,
        [&](const std::uint64_t& v) {
          ++recv_count;
          recv_sum += v;
        },
        mc.capacity);

    ygm::xoshiro256 rng(7 + static_cast<std::uint64_t>(c.rank()));
    const int sends = 150 + static_cast<int>(rng.below(150));
    std::vector<std::uint64_t> count_to(static_cast<std::size_t>(c.size()), 0);
    std::vector<std::uint64_t> sum_to(static_cast<std::size_t>(c.size()), 0);
    for (int i = 0; i < sends; ++i) {
      const int dest =
          static_cast<int>(rng.below(static_cast<std::uint64_t>(c.size())));
      const std::uint64_t value = rng() >> 20;
      mb.send(dest, value);
      ++count_to[static_cast<std::size_t>(dest)];
      sum_to[static_cast<std::size_t>(dest)] += value;
    }
    mb.wait_empty();

    const auto expect_count = c.allreduce_vec(count_to, sim::op_sum{});
    const auto expect_sum = c.allreduce_vec(sum_to, sim::op_sum{});
    EXPECT_EQ(recv_count, expect_count[static_cast<std::size_t>(c.rank())]);
    EXPECT_EQ(recv_sum, expect_sum[static_cast<std::size_t>(c.rank())]);
  });
}

TEST_P(HybridMachines, BroadcastReachesEveryOtherRankOnce) {
  const auto& mc = GetParam();
  const topology topo(mc.nodes, mc.cores);
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, mc.kind);
    std::vector<int> copies_from(static_cast<std::size_t>(c.size()), 0);
    hybrid_mailbox<std::uint32_t> mb(
        world,
        [&](const std::uint32_t& origin) {
          ++copies_from[static_cast<std::size_t>(origin)];
        },
        mc.capacity);
    constexpr int kBcasts = 4;
    for (int i = 0; i < kBcasts; ++i) {
      mb.send_bcast(static_cast<std::uint32_t>(c.rank()));
    }
    mb.wait_empty();
    for (int origin = 0; origin < c.size(); ++origin) {
      EXPECT_EQ(copies_from[static_cast<std::size_t>(origin)],
                origin == c.rank() ? 0 : kBcasts);
    }
  });
}

TEST_P(HybridMachines, CallbackCascadesTerminate) {
  const auto& mc = GetParam();
  const topology topo(mc.nodes, mc.cores);
  struct hop_msg {
    std::uint32_t ttl = 0;
    std::uint64_t seed = 0;
  };
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, mc.kind);
    std::uint64_t deliveries = 0;
    hybrid_mailbox<hop_msg>* mbp = nullptr;
    hybrid_mailbox<hop_msg> mb(
        world,
        [&](const hop_msg& m) {
          ++deliveries;
          if (m.ttl > 0) {
            const auto next = ygm::splitmix64(m.seed);
            mbp->send(static_cast<int>(
                          next % static_cast<std::uint64_t>(c.size())),
                      hop_msg{m.ttl - 1, next});
          }
        },
        mc.capacity);
    mbp = &mb;
    constexpr std::uint32_t kTtl = 5;
    constexpr int kSeeds = 12;
    for (int i = 0; i < kSeeds; ++i) {
      const auto seed = ygm::splitmix64(
          static_cast<std::uint64_t>(c.rank()) * 77 + static_cast<std::uint64_t>(i));
      mb.send(static_cast<int>(seed % static_cast<std::uint64_t>(c.size())),
              hop_msg{kTtl, seed});
    }
    mb.wait_empty();
    const auto total = c.allreduce(deliveries, sim::op_sum{});
    EXPECT_EQ(total,
              static_cast<std::uint64_t>(c.size()) * kSeeds * (kTtl + 1));
  });
}

INSTANTIATE_TEST_SUITE_P(
    Machines, HybridMachines, ::testing::ValuesIn(machine_cases()),
    [](const ::testing::TestParamInfo<machine_case>& info) {
      return std::string(ygm::routing::to_string(info.param.kind)) + "_N" +
             std::to_string(info.param.nodes) + "_C" +
             std::to_string(info.param.cores) + "_cap" +
             std::to_string(info.param.capacity);
    });

// ----------------------------------------------------- hybrid vs MPI-only

TEST(Hybrid, MatchesMailboxDeliverySideBySide) {
  // Run both mailboxes over one world with identical traffic; results must
  // be identical.
  const topology topo(2, 4);
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, scheme_kind::nlnr);
    std::uint64_t sum_plain = 0;
    std::uint64_t sum_hybrid = 0;
    mailbox<std::uint64_t> plain(
        world, [&](const std::uint64_t& v) { sum_plain += v; }, 512);
    hybrid_mailbox<std::uint64_t> hybrid(
        world, [&](const std::uint64_t& v) { sum_hybrid += v; }, 512);

    ygm::xoshiro256 rng(99 + static_cast<std::uint64_t>(c.rank()));
    for (int i = 0; i < 300; ++i) {
      const int dest =
          static_cast<int>(rng.below(static_cast<std::uint64_t>(c.size())));
      const std::uint64_t v = rng() >> 30;
      plain.send(dest, v);
      hybrid.send(dest, v);
    }
    plain.wait_empty();
    hybrid.wait_empty();
    EXPECT_EQ(sum_plain, sum_hybrid);
  });
}

TEST(Hybrid, LocalTrafficUsesSharedHandoffNotPackets) {
  // Single node: every hop is local, so the hybrid must move zero wire
  // bytes and hand everything over through shared memory.
  const topology topo(1, 4);
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, scheme_kind::node_local);
    hybrid_mailbox<std::uint64_t> mb(world, [](const std::uint64_t&) {}, 256);
    for (int d = 0; d < c.size(); ++d) {
      if (d != c.rank()) mb.send(d, 1);
    }
    mb.wait_empty();
    EXPECT_EQ(mb.stats().remote_bytes, 0u);
    EXPECT_EQ(mb.shared_handoffs(), static_cast<std::uint64_t>(c.size() - 1));
  });
}

TEST(Hybrid, BroadcastFanOutSharesOnePayloadBuffer) {
  // Under NodeRemote, a broadcast's local fan-out at each receiving node
  // shares the payload: handoffs happen but local byte copies counted are
  // payload-sized references, and wire traffic is exactly one packet per
  // remote tree edge.
  const topology topo(2, 4);
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, scheme_kind::node_remote);
    int got = 0;
    hybrid_mailbox<std::string> mb(world, [&](const std::string&) { ++got; },
                                   1);  // flush every record
    if (c.rank() == 0) {
      mb.send_bcast(std::string(100, 'x'));
    }
    mb.wait_empty();
    EXPECT_EQ(got, c.rank() == 0 ? 0 : 1);
    const auto wire_packets =
        c.allreduce(mb.stats().remote_packets, sim::op_sum{});
    // NodeRemote broadcast: N-1 = 1 remote message.
    EXPECT_EQ(wire_packets, 1u);
    const auto handoffs = c.allreduce(mb.shared_handoffs(), sim::op_sum{});
    // Local copies: 3 on the origin node + 3 on the remote node.
    EXPECT_EQ(handoffs, 6u);
  });
}

TEST(Hybrid, TestEmptyDetectsQuiescence) {
  const topology topo(2, 2);
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, scheme_kind::nlnr);
    std::uint64_t got = 0;
    hybrid_mailbox<std::uint64_t> mb(world,
                                     [&](const std::uint64_t& v) { got += v; });
    for (int d = 0; d < c.size(); ++d) {
      if (d != c.rank()) mb.send(d, 2);
    }
    while (!mb.test_empty()) {
    }
    EXPECT_EQ(got, 2u * static_cast<std::uint64_t>(c.size() - 1));
  });
}

}  // namespace

// (appended) chaos-PR regression tests, mirroring test_mailbox.cpp: the
// hybrid's remote buffers share core::mailbox's capacity accounting and
// progress-reentrancy contract.

TEST(Hybrid, TimedArrivalStampCountsTowardCapacity) {
  // 2 nodes x 1 core: the single peer is remote, so the send takes the
  // coalesced-packet path whose timed packets carry the 8-byte stamp.
  sim::run(2, [](sim::comm& c) {
    comm_world world(c, 1, scheme_kind::no_route);
    world.attach_virtual_network(ygm::net::network_params::quartz_like());
    const std::size_t one_record =
        ygm::core::packet_record_size(1, sizeof(std::uint64_t));
    hybrid_mailbox<std::uint64_t> mb(world, [](const std::uint64_t&) {},
                                     sizeof(double) + one_record);
    mb.send(1 - c.rank(), 99);
    EXPECT_EQ(mb.stats().flushes, 1u);
    mb.wait_empty();
    EXPECT_EQ(mb.stats().deliveries, 1u);
  });
}

TEST(Hybrid, ReentrantPollFromCallbackIsANoOp) {
  sim::run(2, [](sim::comm& c) {
    comm_world world(c, 1, scheme_kind::no_route);
    hybrid_mailbox<std::uint64_t>* mbp = nullptr;
    int depth = 0;
    int max_depth = 0;
    std::uint64_t got = 0;
    hybrid_mailbox<std::uint64_t> mb(
        world,
        [&](const std::uint64_t& v) {
          ++depth;
          if (depth > max_depth) max_depth = depth;
          got += v;
          mbp->poll();
          mbp->test_empty();
          --depth;
        },
        64);
    mbp = &mb;
    if (c.rank() == 1) {
      for (int i = 0; i < 100; ++i) mb.send(0, 1);
    }
    mb.wait_empty();
    if (c.rank() == 0) {
      EXPECT_EQ(got, 100u);
      EXPECT_EQ(max_depth, 1);
    }
  });
}
