// Cross-module integration tests: full pipelines that chain several
// subsystems the way the benches and a real application would, plus
// failure-injection paths.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/bfs.hpp"
#include "apps/cc_disjoint_set.hpp"
#include "apps/connected_components.hpp"
#include "apps/degree_count.hpp"
#include "apps/spmv.hpp"
#include "containers/counting_set.hpp"
#include "core/hybrid_mailbox.hpp"
#include "core/ygm.hpp"
#include "graph/degree_model.hpp"
#include "graph/generators.hpp"
#include "graph/rmat.hpp"
#include "linalg/combblas_lite.hpp"

namespace {

namespace sim = ygm::mpisim;
using ygm::core::comm_world;
using ygm::graph::edge;
using ygm::graph::vertex_id;
using ygm::routing::scheme_kind;
using ygm::routing::topology;

// The full delegate pipeline of the paper's §V-B experiment: generate an
// RMAT graph, count degrees (Algorithm 1), scale the threshold with the
// expected max degree, select delegates, run CC with broadcast-synchronized
// replicas, and verify against the union-find oracle AND the disjoint-set
// implementation.
TEST(Pipeline, FullDelegatePipelineOnRmat) {
  const topology topo(2, 4);
  const int scale = 8;
  const std::uint64_t m = 6000;
  const vertex_id n = vertex_id{1} << scale;
  const auto params = ygm::graph::rmat_params::graph500();

  // Serial oracle from the (deterministic) union of all rank streams.
  std::vector<edge> all;
  for (int r = 0; r < topo.num_ranks(); ++r) {
    ygm::graph::rmat_generator g(scale, m, params, 99, r, topo.num_ranks());
    g.for_each([&](const edge& e) { all.push_back(e); });
  }
  const auto oracle = ygm::apps::connected_components_reference(n, all);

  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, scheme_kind::nlnr);
    const ygm::graph::rmat_generator gen(scale, m, params, 99, c.rank(),
                                         c.size());
    const ygm::graph::round_robin_partition part{c.size()};

    // Phase 1: degrees.
    const auto deg = ygm::apps::degree_count(world, gen, 512);

    // Phase 2: threshold from the closed-form degree model.
    const ygm::graph::rmat_degree_model dm(scale, m, params);
    auto threshold = static_cast<std::uint64_t>(dm.max_degree() / 8);
    if (threshold < 2) threshold = 2;
    const auto delegates = ygm::graph::select_delegates(
        world, deg.local_degrees, part, threshold);
    const auto ndeleg = c.allreduce(delegates.size(), sim::op_max{});
    EXPECT_GT(ndeleg, 0u) << "skewed graph must produce delegates";

    // Phase 3: CC with delegates.
    std::vector<edge> mine;
    gen.for_each([&](const edge& e) { mine.push_back(e); });
    const auto cc =
        ygm::apps::connected_components(world, mine, n, delegates, 512);

    // Phase 4: CC again via the disjoint-set container.
    const auto ds =
        ygm::apps::connected_components_disjoint_set(world, mine, n, 512);

    for (std::uint64_t j = 0; j < cc.local_labels.size(); ++j) {
      const vertex_id id = part.global_id(c.rank(), j);
      ASSERT_EQ(cc.local_labels[j], oracle[id]) << "label-prop vertex " << id;
      ASSERT_EQ(ds.local_labels[j], oracle[id]) << "disjoint-set vertex " << id;
    }
    EXPECT_GT(cc.broadcasts + 1, 0u);
  });
}

// The Fig. 8 head-to-head: one matrix, three SpMV implementations (YGM with
// delegates, YGM without, CombBLAS-lite), all agreeing with the serial
// reference.
TEST(Pipeline, ThreeWaySpmvAgreement) {
  const int ranks = 16;  // 4x4 grid, 4 cores/node
  const std::uint64_t n = 1 << 9;
  const std::uint64_t nnz = 8 * n;
  const auto params = ygm::graph::rmat_params::graph500();

  std::vector<ygm::linalg::triplet> all;
  for (int r = 0; r < ranks; ++r) {
    ygm::graph::rmat_generator g(9, nnz, params, 5, r, ranks);
    g.for_each([&](const edge& e) {
      all.push_back({e.src, e.dst, 1.0 + static_cast<double>(e.dst % 5)});
    });
  }
  std::vector<double> x(n);
  for (std::uint64_t i = 0; i < n; ++i) x[i] = 0.25 * static_cast<double>(i % 11) - 1;
  const auto ref = ygm::linalg::spmv_reference(n, all, x);

  sim::run(ranks, [&](sim::comm& c) {
    comm_world world(c, 4, scheme_kind::node_remote);
    const ygm::graph::round_robin_partition part{c.size()};
    const ygm::graph::rmat_generator gen(9, nnz, params, 5, c.rank(),
                                         c.size());
    std::vector<ygm::linalg::triplet> mine;
    gen.for_each([&](const edge& e) {
      mine.push_back({e.src, e.dst, 1.0 + static_cast<double>(e.dst % 5)});
    });

    std::vector<double> x_local(part.local_count(c.rank(), n));
    for (std::uint64_t j = 0; j < x_local.size(); ++j) {
      x_local[j] = x[part.global_id(c.rank(), j)];
    }

    ygm::apps::dist_spmv plain(world, n, mine, {});
    const auto y_plain = plain.multiply(x_local);

    ygm::apps::dist_spmv delegated(world, n, mine,
                                   ygm::graph::delegate_set({0, 1, 2, 3}));
    const auto y_del = delegated.multiply(x_local);

    ygm::linalg::combblas_lite grid(c, n, mine);
    std::vector<double> xb(grid.block_size(grid.grid_col()), 0.0);
    if (grid.on_diagonal()) {
      for (std::uint64_t i = 0; i < xb.size(); ++i) {
        xb[i] = x[grid.block_begin(grid.grid_col()) + i];
      }
    }
    const auto y_grid = grid.spmv(xb);

    for (std::uint64_t j = 0; j < y_plain.local_y.size(); ++j) {
      const vertex_id row = part.global_id(c.rank(), j);
      ASSERT_NEAR(y_plain.local_y[j], ref[row], 1e-9);
      ASSERT_NEAR(y_del.local_y[j], ref[row], 1e-9);
    }
    if (grid.on_diagonal()) {
      const std::uint64_t r0 = grid.block_begin(grid.grid_row());
      for (std::uint64_t i = 0; i < y_grid.size(); ++i) {
        ASSERT_NEAR(y_grid[i], ref[r0 + i], 1e-9);
      }
    }
  });
}

// BFS over both mailbox flavors must agree level by level.
TEST(Pipeline, PlainAndHybridMailboxProduceIdenticalBfs) {
  const topology topo(2, 4);
  const int scale = 7;
  const vertex_id n = vertex_id{1} << scale;
  std::vector<edge> all;
  {
    ygm::graph::rmat_generator g(scale, 900,
                                 ygm::graph::rmat_params::graph500(), 3, 0,
                                 1);
    g.for_each([&](const edge& e) { all.push_back(e); });
  }
  const vertex_id root = all.front().src;
  const auto oracle = ygm::apps::bfs_reference(n, all, root);

  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, scheme_kind::node_local);
    std::vector<edge> mine;
    for (std::size_t i = 0; i < all.size(); ++i) {
      if (static_cast<int>(i % static_cast<std::size_t>(c.size())) ==
          c.rank()) {
        mine.push_back(all[i]);
      }
    }
    const ygm::apps::local_adjacency adj(world, mine, n, false);
    const auto& part = adj.partition();

    // Plain-mailbox BFS (the apps:: implementation).
    const auto plain = ygm::apps::bfs(world, adj, root, 256);

    // Hybrid-mailbox BFS, hand-rolled with the same relaxation logic.
    std::vector<std::uint64_t> levels(adj.local_vertex_count(),
                                      ygm::apps::bfs_unreached);
    struct level_msg {
      vertex_id v;
      std::uint64_t level;
    };
    ygm::core::hybrid_mailbox<level_msg>* mbp = nullptr;
    ygm::core::hybrid_mailbox<level_msg> mb(
        world,
        [&](const level_msg& m) {
          const auto j = part.local_index(m.v);
          if (m.level < levels[j]) {
            levels[j] = m.level;
            for (const auto& nb : adj.neighbors(j)) {
              mbp->send(part.owner(nb.id), level_msg{nb.id, m.level + 1});
            }
          }
        },
        256);
    mbp = &mb;
    if (part.owner(root) == c.rank()) mb.send(c.rank(), level_msg{root, 0});
    mb.wait_empty();

    for (std::uint64_t j = 0; j < levels.size(); ++j) {
      const vertex_id id = part.global_id(c.rank(), j);
      ASSERT_EQ(plain.local_levels[j], oracle[id]);
      ASSERT_EQ(levels[j], oracle[id]);
    }
  });
}

// Degree counting through the counting_set container must agree with the
// Algorithm 1 implementation.
TEST(Pipeline, CountingSetReproducesDegreeCount) {
  const topology topo(2, 2);
  const vertex_id n = 100;
  const std::uint64_t m = 1200;
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, scheme_kind::nlnr);
    const ygm::graph::erdos_renyi_generator gen(n, m, 8, c.rank(), c.size());

    const auto direct = ygm::apps::degree_count(world, gen, 256);

    ygm::container::counting_set<vertex_id> cs(world, 256);
    gen.for_each([&](const edge& e) {
      cs.async_insert(e.src);
      cs.async_insert(e.dst);
    });
    cs.wait_empty();
    EXPECT_EQ(cs.global_total(), 2 * m);

    // Compare each vertex's count: the container hashes ownership, so ask
    // the container on the rank that owns each vertex under ITS partition.
    const ygm::graph::round_robin_partition part{c.size()};
    std::uint64_t checked = 0;
    for (vertex_id v = 0; v < n; ++v) {
      if (cs.owner(v) == c.rank() && part.owner(v) == c.rank()) {
        EXPECT_EQ(cs.local_count(v),
                  direct.local_degrees[part.local_index(v)]);
        ++checked;
      }
    }
    // Cross-partition comparisons need communication; enough overlap exists
    // on small worlds for this spot check to be meaningful.
    const auto total_checked = c.allreduce(checked, sim::op_sum{});
    EXPECT_GT(total_checked, 0u);
  });
}

// Failure injection: an exception thrown from a receive callback on one
// rank must abort the world and propagate, not deadlock the others.
TEST(FailureInjection, CallbackExceptionAbortsCleanly) {
  const topology topo(2, 2);
  EXPECT_THROW(
      sim::run(topo.num_ranks(),
               [&](sim::comm& c) {
                 comm_world world(c, topo, scheme_kind::node_remote);
                 ygm::core::mailbox<int> mb(
                     world, [&](const int& v) {
                       if (v == 13 && c.rank() == 1) {
                         throw std::runtime_error("poison message");
                       }
                     });
                 for (int d = 0; d < c.size(); ++d) {
                   if (d != c.rank()) mb.send(d, 13);
                 }
                 mb.wait_empty();
               }),
      std::runtime_error);
}

// Failure injection: malformed wire bytes on the mailbox's data tag must
// surface as ygm::error, not memory corruption.
TEST(FailureInjection, CorruptPacketIsRejected) {
  const topology topo(1, 2);
  EXPECT_THROW(
      sim::run(topo.num_ranks(),
               [&](sim::comm& c) {
                 comm_world world(c, topo, scheme_kind::no_route);
                 ygm::core::mailbox<std::string> mb(world,
                                                    [](const std::string&) {});
                 if (c.rank() == 0) {
                   // Forge a packet: header varint claims a huge payload.
                   std::vector<std::byte> evil;
                   ygm::ser::varint_encode((1ULL << 1), evil);    // addr 1, p2p
                   ygm::ser::varint_encode(1ULL << 40, evil);     // len lie
                   c.send_bytes(1, 1 << 20, std::move(evil));     // data tag
                 }
                 // Sends are eager, so after the barrier the forged packet
                 // is already queued at rank 1 and its first poll hits it.
                 c.barrier();
                 mb.wait_empty();
               }),
      ygm::error);
}

}  // namespace
