// Tests for asynchronous k-core decomposition (apps/kcore.hpp) and the
// mpisim scan/exscan collectives it motivated.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/kcore.hpp"
#include "core/ygm.hpp"
#include "graph/rmat.hpp"

namespace {

namespace sim = ygm::mpisim;
using ygm::core::comm_world;
using ygm::graph::edge;
using ygm::graph::vertex_id;
using ygm::routing::scheme_kind;
using ygm::routing::topology;

std::vector<edge> slice(const std::vector<edge>& all, int rank, int nranks) {
  std::vector<edge> mine;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (static_cast<int>(i % static_cast<std::size_t>(nranks)) == rank) {
      mine.push_back(all[i]);
    }
  }
  return mine;
}

void expect_kcore_matches_oracle(const topology& topo, scheme_kind kind,
                                 const std::vector<edge>& all, vertex_id n,
                                 std::uint64_t k) {
  const auto oracle = ygm::apps::k_core_reference(n, all, k);
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, kind);
    const ygm::apps::local_adjacency adj(
        world, slice(all, c.rank(), c.size()), n, /*weighted=*/false);
    const auto res = ygm::apps::k_core(world, adj, k, 256);
    const auto& part = adj.partition();
    for (std::uint64_t j = 0; j < res.in_core.size(); ++j) {
      const vertex_id id = part.global_id(c.rank(), j);
      ASSERT_EQ(res.in_core[j], oracle[id])
          << "vertex " << id << " k=" << k << " scheme "
          << ygm::routing::to_string(kind);
    }
  });
}

// ------------------------------------------------------------ known shapes

TEST(KCore, CliquePlusTailPeelsTheTail) {
  // K5 with a path hanging off vertex 0: the 4-core is exactly the clique.
  std::vector<edge> g;
  for (vertex_id a = 0; a < 5; ++a) {
    for (vertex_id b = a + 1; b < 5; ++b) g.push_back({a, b});
  }
  for (vertex_id v = 5; v < 12; ++v) g.push_back({v - (v == 5 ? 5 : 1), v});
  expect_kcore_matches_oracle(topology(2, 2), scheme_kind::node_remote, g, 12,
                              4);

  // Direct check of the survivor count too.
  sim::run(4, [&](sim::comm& c) {
    comm_world world(c, 2, scheme_kind::node_remote);
    const ygm::apps::local_adjacency adj(world, slice(g, c.rank(), 4), 12,
                                         false);
    const auto res = ygm::apps::k_core(world, adj, 4);
    EXPECT_EQ(res.survivors, 5u);
  });
}

TEST(KCore, EntireGraphSurvivesAtKZero) {
  std::vector<edge> g{{0, 1}, {2, 3}};
  sim::run(4, [&](sim::comm& c) {
    comm_world world(c, 2, scheme_kind::nlnr);
    const ygm::apps::local_adjacency adj(world, slice(g, c.rank(), 4), 6,
                                         false);
    const auto res = ygm::apps::k_core(world, adj, 0);
    EXPECT_EQ(res.survivors, 6u);
    EXPECT_EQ(res.removal_messages, 0u);
  });
}

TEST(KCore, EverythingPeelsWhenKExceedsMaxDegree) {
  std::vector<edge> g;
  for (vertex_id v = 0; v + 1 < 16; ++v) g.push_back({v, v + 1});
  sim::run(4, [&](sim::comm& c) {
    comm_world world(c, 2, scheme_kind::node_local);
    const ygm::apps::local_adjacency adj(world, slice(g, c.rank(), 4), 16,
                                         false);
    const auto res = ygm::apps::k_core(world, adj, 3);
    EXPECT_EQ(res.survivors, 0u);
  });
}

TEST(KCore, DeepCascadeCrossesRanks) {
  // A long path 2-core-peels from both ends inward: the cascade depth is
  // ~n/2 and every step crosses ranks under round-robin ownership.
  const vertex_id n = 40;
  std::vector<edge> path;
  for (vertex_id v = 0; v + 1 < n; ++v) path.push_back({v, v + 1});
  expect_kcore_matches_oracle(topology(4, 2), scheme_kind::nlnr, path, n, 2);
}

// ----------------------------------------------------------- random graphs

class KCoreSchemes : public ::testing::TestWithParam<scheme_kind> {};

TEST_P(KCoreSchemes, MatchesOracleAcrossKOnRmat) {
  const int scale = 7;
  const vertex_id n = vertex_id{1} << scale;
  std::vector<edge> all;
  ygm::graph::rmat_generator g(scale, 1200,
                               ygm::graph::rmat_params::graph500(), 44, 0, 1);
  g.for_each([&](const edge& e) { all.push_back(e); });
  for (const std::uint64_t k : {1, 2, 3, 5, 8}) {
    expect_kcore_matches_oracle(topology(2, 3), GetParam(), all, n, k);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, KCoreSchemes,
    ::testing::ValuesIn(std::vector<scheme_kind>(
        std::begin(ygm::routing::all_schemes),
        std::end(ygm::routing::all_schemes))),
    [](const ::testing::TestParamInfo<scheme_kind>& info) {
      return std::string(ygm::routing::to_string(info.param));
    });

// -------------------------------------------------------------- scan/exscan

TEST(Scan, InclusiveScanAccumulatesPrefixes) {
  sim::run(7, [](sim::comm& c) {
    const int got = c.scan(c.rank() + 1, sim::op_sum{});
    EXPECT_EQ(got, (c.rank() + 1) * (c.rank() + 2) / 2);
  });
}

TEST(Scan, ExclusiveScanShiftsByOne) {
  sim::run(6, [](sim::comm& c) {
    const int got = c.exscan(c.rank() + 1, sim::op_sum{});
    EXPECT_EQ(got, c.rank() * (c.rank() + 1) / 2);  // rank 0 gets identity 0
  });
}

TEST(Scan, ExscanComputesPartitionOffsets) {
  // The canonical use: each rank owns a variable count; exscan yields its
  // global starting offset.
  sim::run(5, [](sim::comm& c) {
    const std::uint64_t mine = 10 + 3 * static_cast<std::uint64_t>(c.rank());
    const auto offset = c.exscan(mine, sim::op_sum{});
    std::uint64_t expect = 0;
    for (int r = 0; r < c.rank(); ++r) {
      expect += 10 + 3 * static_cast<std::uint64_t>(r);
    }
    EXPECT_EQ(offset, expect);
    // And the total via scan on the last rank.
    const auto inclusive = c.scan(mine, sim::op_sum{});
    EXPECT_EQ(inclusive, expect + mine);
  });
}

TEST(Scan, WorksWithNonCommutativeOp) {
  sim::run(4, [](sim::comm& c) {
    const auto got = c.scan(std::string(1, static_cast<char>('a' + c.rank())),
                            [](const std::string& x, const std::string& y) {
                              return x + y;
                            });
    EXPECT_EQ(got, std::string("abcd").substr(
                       0, static_cast<std::size_t>(c.rank()) + 1));
  });
}

TEST(Scan, SingleRankIsIdentityPassthrough) {
  sim::run(1, [](sim::comm& c) {
    EXPECT_EQ(c.scan(42, sim::op_sum{}), 42);
    EXPECT_EQ(c.exscan(42, sim::op_sum{}, -1), -1);
  });
}

}  // namespace
