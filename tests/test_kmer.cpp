// Tests for the k-mer counting application (apps/kmer_count.hpp), the
// HipMer-style workload of paper §II.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "apps/kmer_count.hpp"
#include "core/ygm.hpp"

namespace {

namespace sim = ygm::mpisim;
using namespace ygm::apps;
using ygm::core::comm_world;
using ygm::routing::scheme_kind;
using ygm::routing::topology;

// ------------------------------------------------------------ bit packing

TEST(Kmer, PackUnpackRoundTrips) {
  for (const std::string s : {"A", "ACGT", "TTTTT", "GATTACA",
                              "ACGTACGTTTAGGCCAGGTAC"}) {
    EXPECT_EQ(unpack_kmer(pack_kmer(s), static_cast<int>(s.size())), s);
  }
}

TEST(Kmer, ReverseComplementIsAnInvolution) {
  ygm::xoshiro256 rng(3);
  for (int iter = 0; iter < 200; ++iter) {
    const int k = 1 + static_cast<int>(rng.below(kmer_max_k));
    const std::uint64_t mask = (std::uint64_t{1} << (2 * k)) - 1;
    const std::uint64_t kmer = rng() & mask;
    EXPECT_EQ(reverse_complement(reverse_complement(kmer, k), k), kmer);
  }
}

TEST(Kmer, ReverseComplementMatchesStringDefinition) {
  // revcomp("ACGT") = "ACGT" (palindrome); revcomp("AAC") = "GTT".
  EXPECT_EQ(unpack_kmer(reverse_complement(pack_kmer("ACGT"), 4), 4), "ACGT");
  EXPECT_EQ(unpack_kmer(reverse_complement(pack_kmer("AAC"), 3), 3), "GTT");
  EXPECT_EQ(unpack_kmer(reverse_complement(pack_kmer("GATTACA"), 7), 7),
            "TGTAATC");
}

TEST(Kmer, CanonicalFormIsStrandIndependent) {
  ygm::xoshiro256 rng(9);
  for (int iter = 0; iter < 200; ++iter) {
    const int k = 1 + static_cast<int>(rng.below(kmer_max_k));
    const std::uint64_t mask = (std::uint64_t{1} << (2 * k)) - 1;
    const std::uint64_t kmer = rng() & mask;
    EXPECT_EQ(canonical_kmer(kmer, k),
              canonical_kmer(reverse_complement(kmer, k), k));
  }
}

// --------------------------------------------------------------- counting

// Serial oracle over all ranks' reads.
std::map<std::uint64_t, std::uint64_t> oracle_counts(
    const std::vector<std::vector<std::string>>& reads_by_rank, int k) {
  std::map<std::uint64_t, std::uint64_t> counts;
  const std::uint64_t mask = (std::uint64_t{1} << (2 * k)) - 1;
  for (const auto& reads : reads_by_rank) {
    for (const auto& read : reads) {
      std::uint64_t window = 0;
      int valid = 0;
      for (const char b : read) {
        const int code = base_code(b);
        if (code < 0) {
          valid = 0;
          window = 0;
          continue;
        }
        window = ((window << 2) | static_cast<std::uint64_t>(code)) & mask;
        if (++valid >= k) ++counts[canonical_kmer(window, k)];
      }
    }
  }
  return counts;
}

TEST(Kmer, CountsMatchSerialOracle) {
  const topology topo(2, 3);
  const int k = 11;
  std::vector<std::vector<std::string>> reads_by_rank;
  for (int r = 0; r < topo.num_ranks(); ++r) {
    reads_by_rank.push_back(synthetic_reads(r, 40, 80, 55));
  }
  const auto oracle = oracle_counts(reads_by_rank, k);
  std::uint64_t oracle_total = 0;
  for (const auto& [kmer, count] : oracle) oracle_total += count;

  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, scheme_kind::nlnr);
    const auto res = count_kmers(
        world, reads_by_rank[static_cast<std::size_t>(c.rank())], k, 1);
    EXPECT_EQ(res.total_kmers, oracle_total);
    EXPECT_EQ(res.distinct_kmers, oracle.size());
  });
}

TEST(Kmer, PlantedMotifIsFoundFrequent) {
  const topology topo(2, 2);
  const std::string motif = "ACGTACGTTTAGGCCAGGTAC";
  const int k = 15;
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, scheme_kind::node_remote);
    const auto reads =
        synthetic_reads(c.rank(), 100, 90, 123, motif, /*plant_every=*/4);
    const auto res = count_kmers(world, reads, k, /*min_count=*/40);
    ASSERT_FALSE(res.frequent.empty());
    const auto planted = canonical_kmer(
        pack_kmer(std::string_view(motif).substr(0, k)), k);
    bool found = false;
    for (const auto& [kmer, count] : res.frequent) {
      if (kmer == planted) {
        found = true;
        // 25 plants per rank x 4 ranks, and the window slides over the
        // whole motif; at least the exact-position copies must be counted.
        EXPECT_GE(count, 100u);
      }
    }
    EXPECT_TRUE(found);
  });
}

TEST(Kmer, JunkBasesBreakTheWindow) {
  // A read of length 2k-1 with an N in the middle yields no valid k-mer.
  const topology topo(1, 2);
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, scheme_kind::no_route);
    const int k = 5;
    std::vector<std::string> reads;
    if (c.rank() == 0) {
      reads = {"ACGTNACGT"};  // windows of 5 always cross the N
    }
    const auto res = count_kmers(world, reads, k, 1);
    EXPECT_EQ(res.total_kmers, 0u);
    EXPECT_EQ(res.distinct_kmers, 0u);
  });
}

TEST(Kmer, RejectsOutOfRangeK) {
  sim::run(1, [](sim::comm& c) {
    comm_world world(c, 1, scheme_kind::no_route);
    EXPECT_THROW(count_kmers(world, {}, 0, 1), ygm::error);
    EXPECT_THROW(count_kmers(world, {}, 32, 1), ygm::error);
  });
}

TEST(Kmer, SyntheticReadsAreDeterministicPerRank) {
  const auto a = synthetic_reads(3, 10, 50, 7);
  const auto b = synthetic_reads(3, 10, 50, 7);
  EXPECT_EQ(a, b);
  const auto other = synthetic_reads(4, 10, 50, 7);
  EXPECT_NE(a, other);
}

}  // namespace
