// Tests for the sparse linear algebra substrate (linalg/): local CSC and
// the CombBLAS-lite 2D SpMV baseline.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "core/ygm.hpp"
#include "linalg/combblas_lite.hpp"
#include "linalg/csc.hpp"

namespace {

namespace sim = ygm::mpisim;
using ygm::linalg::combblas_lite;
using ygm::linalg::csc_matrix;
using ygm::linalg::spmv_reference;
using ygm::linalg::triplet;

std::vector<triplet> random_triplets(std::uint64_t n, std::uint64_t nnz,
                                     std::uint64_t seed) {
  ygm::xoshiro256 rng(seed);
  std::vector<triplet> t;
  t.reserve(nnz);
  for (std::uint64_t i = 0; i < nnz; ++i) {
    t.push_back({rng.below(n), rng.below(n),
                 static_cast<double>(1 + rng.below(9))});
  }
  return t;
}

std::vector<double> random_vector(std::uint64_t n, std::uint64_t seed) {
  ygm::xoshiro256 rng(seed);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.uniform() * 2 - 1;
  return x;
}

// ------------------------------------------------------------------- CSC

TEST(Csc, EmptyMatrixMultipliesToZero) {
  const auto m = csc_matrix::from_triplets(4, 3, {});
  EXPECT_EQ(m.num_nonzeros(), 0u);
  std::vector<double> y(4, 1.0);
  std::vector<double> x(3, 5.0);
  m.multiply_add(x, y);
  EXPECT_EQ(y, (std::vector<double>{1, 1, 1, 1}));
}

TEST(Csc, BuildsAndMultipliesSmallMatrix) {
  // [ 1 0 2 ]
  // [ 0 3 0 ]
  const auto m = csc_matrix::from_triplets(
      2, 3, {{0, 2, 2.0}, {1, 1, 3.0}, {0, 0, 1.0}});
  EXPECT_EQ(m.num_nonzeros(), 3u);
  std::vector<double> y(2, 0.0);
  m.multiply_add(std::vector<double>{1, 10, 100}, y);
  EXPECT_EQ(y[0], 201.0);
  EXPECT_EQ(y[1], 30.0);
}

TEST(Csc, SumsDuplicateEntries) {
  const auto m = csc_matrix::from_triplets(
      2, 2, {{0, 0, 1.0}, {0, 0, 2.5}, {1, 1, 1.0}});
  EXPECT_EQ(m.num_nonzeros(), 2u);
  std::vector<double> y(2, 0.0);
  m.multiply_add(std::vector<double>{1, 1}, y);
  EXPECT_EQ(y[0], 3.5);
}

TEST(Csc, MatchesReferenceOnRandomMatrices) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const std::uint64_t n = 50;
    const auto t = random_triplets(n, 400, seed);
    const auto x = random_vector(n, seed + 100);
    const auto m = csc_matrix::from_triplets(n, n, t);
    std::vector<double> y(n, 0.0);
    m.multiply_add(x, y);
    const auto ref = spmv_reference(n, t, x);
    for (std::uint64_t i = 0; i < n; ++i) {
      EXPECT_NEAR(y[i], ref[i], 1e-9) << "row " << i;
    }
  }
}

TEST(Csc, ForEachVisitsEveryNonzero) {
  const auto t = random_triplets(20, 60, 9);
  const auto m = csc_matrix::from_triplets(20, 20, t);
  double sum = 0;
  std::uint64_t count = 0;
  m.for_each([&](std::uint64_t, std::uint64_t, double v) {
    sum += v;
    ++count;
  });
  double expect_sum = 0;
  for (const auto& e : t) expect_sum += e.value;
  EXPECT_EQ(count, m.num_nonzeros());
  EXPECT_NEAR(sum, expect_sum, 1e-9);
}

TEST(Csc, RejectsOutOfRangeIndices) {
  EXPECT_THROW(csc_matrix::from_triplets(2, 2, {{2, 0, 1.0}}), ygm::error);
  EXPECT_THROW(csc_matrix::from_triplets(2, 2, {{0, 5, 1.0}}), ygm::error);
}

TEST(Csc, MultiplyValidatesShapes) {
  const auto m = csc_matrix::from_triplets(2, 3, {});
  std::vector<double> y2(2), x3(3), x2(2);
  EXPECT_THROW(m.multiply_add(x2, y2), ygm::error);
  EXPECT_THROW(m.multiply_add(x3, x3), ygm::error);
}

// --------------------------------------------------------- CombBLAS-lite

class CombBlasGrids : public ::testing::TestWithParam<int> {};

TEST_P(CombBlasGrids, MatchesReferenceOnRandomMatrix) {
  const int nranks = GetParam();
  const std::uint64_t n = 40;
  const std::uint64_t nnz = 300;

  sim::run(nranks, [&](sim::comm& c) {
    // Each rank contributes a slice of the triplets (construction routes
    // them to their 2D owners).
    const auto all = random_triplets(n, nnz, 77);
    std::vector<triplet> mine;
    for (std::size_t i = 0; i < all.size(); ++i) {
      if (static_cast<int>(i % static_cast<std::size_t>(c.size())) ==
          c.rank()) {
        mine.push_back(all[i]);
      }
    }
    combblas_lite A(c, n, std::move(mine));

    const auto x = random_vector(n, 5);
    // Feed the diagonal ranks their x blocks.
    std::vector<double> x_block;
    if (A.on_diagonal()) {
      x_block.assign(x.begin() + static_cast<std::ptrdiff_t>(
                                     A.block_begin(A.grid_col())),
                     x.begin() + static_cast<std::ptrdiff_t>(
                                     A.block_end(A.grid_col())));
    } else {
      x_block.assign(A.block_size(A.grid_col()), 0.0);
    }
    const auto y_block = A.spmv(x_block);

    // Collect y from the diagonal and compare against the serial oracle.
    const auto ref = spmv_reference(n, all, x);
    if (A.on_diagonal()) {
      const std::uint64_t r0 = A.block_begin(A.grid_row());
      for (std::uint64_t i = 0; i < y_block.size(); ++i) {
        EXPECT_NEAR(y_block[i], ref[r0 + i], 1e-9) << "row " << r0 + i;
      }
    }
    EXPECT_GT(A.bcast_bytes() + A.reduce_bytes(), 0u);
  });
}

INSTANTIATE_TEST_SUITE_P(SquareGrids, CombBlasGrids,
                         ::testing::Values(1, 4, 9, 16));

TEST(CombBlas, RejectsNonSquareWorld) {
  sim::run(6, [](sim::comm& c) {
    EXPECT_THROW(combblas_lite(c, 10, {}), ygm::error);
  });
}

TEST(CombBlas, RepeatedMultipliesAreConsistent) {
  sim::run(4, [](sim::comm& c) {
    const std::uint64_t n = 16;
    const auto all = random_triplets(n, 80, 3);
    std::vector<triplet> mine = c.rank() == 0 ? all : std::vector<triplet>{};
    combblas_lite A(c, n, std::move(mine));

    const auto x = random_vector(n, 8);
    std::vector<double> x_block(A.block_size(A.grid_col()), 0.0);
    if (A.on_diagonal()) {
      for (std::uint64_t i = 0; i < x_block.size(); ++i) {
        x_block[i] = x[A.block_begin(A.grid_col()) + i];
      }
    }
    const auto y1 = A.spmv(x_block);
    const auto y2 = A.spmv(x_block);
    EXPECT_EQ(y1, y2);
  });
}

}  // namespace
