// Live-telemetry tests (docs/TELEMETRY.md §Live telemetry): time-series
// sampler window math, the stale-gauge drop on world teardown, online
// latency sketches cross-checked against offline journey stitching, the
// statusz endpoint parse-back on both backends, and a chaos sweep with the
// sampler thread reading lanes while the rank threads write them.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mini_json.hpp"
#include "core/hybrid_mailbox.hpp"
#include "core/invariants.hpp"
#include "core/launch.hpp"
#include "core/ygm.hpp"
#include "ser/serialize.hpp"
#include "transport/endpoint.hpp"
#include "telemetry/journey.hpp"
#include "telemetry/live.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/statusz.hpp"
#include "telemetry/telemetry.hpp"

namespace {

namespace sim = ygm::mpisim;
namespace tel = ygm::telemetry;
namespace live = ygm::telemetry::live;
namespace causal = ygm::telemetry::causal;
using ygm::common::json_parser;
using ygm::common::json_value;
using ygm::core::comm_world;
using ygm::core::hybrid_mailbox;
using ygm::core::mailbox;
using ygm::core::run_chaos_trial;
using ygm::core::trial_config;
using ygm::routing::scheme_kind;
using ygm::routing::topology;

struct probe_payload {
  std::uint64_t v = 0;
  template <class Ar>
  void serialize(Ar& ar) {
    ar & v;
  }
};

/// Every test leaves the process-global knobs (causal sampling, live
/// overrides, global session) the way it found them.
struct live_config_guard {
  ~live_config_guard() {
    causal::set_sample_rate(0);
    live::set_sample_ms_override(-1);
    live::set_statusz_override(-1);
    tel::set_global(nullptr);
  }
};

// --------------------------------------------------- sampler window math

TEST(LiveSampler, CounterRatesAndGaugeWindows) {
  live_config_guard guard;
  tel::session session;
  tel::set_global(&session);

  live::sampler s({/*period_ms=*/1, /*capacity=*/16, /*own_thread=*/false});
  const int w = session.begin_world(1);
  {
    tel::rank_scope scope(session, w, /*rank=*/0);
    s.tick_now();  // primes the counter baselines

    tel::add(tel::fast_counter::deliveries, 100);
    tel::live::gauge_set(live::gauge::queued_bytes, 10);
    tel::live::gauge_set(live::gauge::queued_bytes, 2);
    tel::live::gauge_set(live::gauge::queued_bytes, 30);
    s.tick_now();

    const auto snap = s.snapshot();
    const auto find = [&](const std::string& metric)
        -> const live::sampler::series_snapshot* {
      for (const auto& ss : snap) {
        if (ss.world == w && ss.rank == 0 && ss.metric == metric) return &ss;
      }
      return nullptr;
    };

    // Counter -> windowed rate: 100 deliveries across one (tiny) window.
    const auto* rate = find("rate.mailbox.deliveries");
    ASSERT_NE(rate, nullptr);
    ASSERT_EQ(rate->points.size(), 1u);
    EXPECT_GT(rate->points[0].value, 0.0);

    // Gauge -> last value plus window min/mean/max of {10, 2, 30}.
    const auto* last = find("live.queued_bytes");
    ASSERT_NE(last, nullptr);
    EXPECT_DOUBLE_EQ(last->points.back().value, 30.0);
    const auto* mn = find("live.queued_bytes.min");
    ASSERT_NE(mn, nullptr);
    EXPECT_DOUBLE_EQ(mn->points.back().value, 2.0);
    const auto* mx = find("live.queued_bytes.max");
    ASSERT_NE(mx, nullptr);
    EXPECT_DOUBLE_EQ(mx->points.back().value, 30.0);
    const auto* mean = find("live.queued_bytes.mean");
    ASSERT_NE(mean, nullptr);
    EXPECT_DOUBLE_EQ(mean->points.back().value, 14.0);

    // Timestamps are monotone within a series across ticks.
    tel::add(tel::fast_counter::deliveries, 7);
    s.tick_now();
    const auto again = s.snapshot();
    for (const auto& ss : again) {
      double prev = -1;
      for (const auto& p : ss.points) {
        EXPECT_GE(p.ts_us, prev) << ss.metric;
        prev = p.ts_us;
      }
    }
  }
}

TEST(LiveSampler, UntouchedGaugeHasNoSeries) {
  live_config_guard guard;
  tel::session session;
  tel::set_global(&session);

  live::sampler s({1, 16, /*own_thread=*/false});
  const int w = session.begin_world(1);
  tel::rank_scope scope(session, w, 0);
  s.tick_now();
  for (const auto& ss : s.snapshot()) {
    EXPECT_TRUE(ss.metric.rfind("live.", 0) != 0)
        << "gauge series " << ss.metric << " exists without a writer";
  }
}

// -------------------------------------------- stale-gauge drop regression

TEST(LiveSampler, TornDownWorldSeriesAreDroppedNotCoasted) {
  live_config_guard guard;
  tel::session session;
  tel::set_global(&session);

  live::sampler s({1, 16, /*own_thread=*/false});
  const int w = session.begin_world(2);
  {
    tel::rank_scope scope(session, w, /*rank=*/1);
    tel::live::gauge_set(live::gauge::credit_used, 4096);
    tel::add(tel::fast_counter::deliveries, 5);
    s.tick_now();
    tel::add(tel::fast_counter::deliveries, 5);
    s.tick_now();

    bool saw_lane = false;
    for (const auto& ss : s.snapshot()) {
      saw_lane = saw_lane || (ss.world == w && ss.rank == 1);
    }
    ASSERT_TRUE(saw_lane);
  }

  // The world tore down (rank_scope unbound). The regression this guards:
  // the sampler used to keep emitting the last gauge values forever; now
  // the next tick must drop the dead lane's series entirely.
  s.tick_now();
  for (const auto& ss : s.snapshot()) {
    EXPECT_FALSE(ss.world == w && ss.rank == 1)
        << "stale series " << ss.metric << " survived world teardown";
  }
}

// ------------------------------------- online sketches vs offline journeys

TEST(LiveSketch, PercentilesAgreeWithOfflineTraceWithinOneBucket) {
  live_config_guard guard;
  tel::session session;
  tel::set_global(&session);
  causal::set_sample_rate(1.0);

  constexpr int kRanks = 4;
  constexpr int kMsgs = 50;
  sim::run(kRanks, [&](sim::comm& c) {
    comm_world world(c, topology(2, 2), scheme_kind::node_remote);
    std::uint64_t received = 0;
    mailbox<probe_payload> mb(
        world, [&](const probe_payload&) { ++received; }, 64);
    for (int i = 0; i < kMsgs; ++i) {
      // No self-sends: every traced journey ends at a remote deliver site,
      // which is exactly where the live e2e sketch is fed.
      mb.send((c.rank() + 1 + i % (kRanks - 1)) % kRanks,
              probe_payload{static_cast<std::uint64_t>(i)});
    }
    mb.wait_empty();
  });
  tel::set_global(nullptr);
  causal::set_sample_rate(0);

  // Offline: stitch the full trace and measure first-enqueue -> deliver.
  const causal::journey_map journeys =
      causal::stitch(causal::extract_hops(session));
  tel::histogram offline;
  for (const auto& [key, j] : journeys) {
    if (!j.complete()) continue;
    double first_us = 0, deliver_us = 0;
    bool have_first = false;
    for (const auto& h : j.hops) {
      if (h.kind == causal::hop_kind::enqueue &&
          (!have_first || h.ts_us < first_us)) {
        first_us = h.ts_us;
        have_first = true;
      }
      if (h.kind == causal::hop_kind::deliver) deliver_us = h.ts_us;
    }
    ASSERT_TRUE(have_first);
    offline.record(std::max(deliver_us - first_us, 0.0));
  }
  ASSERT_GT(offline.count(), 0u);

  // Online: the sketches folded into "live.e2e_us.<scheme>" at export.
  const tel::metrics_registry merged = session.merged_metrics();
  tel::histogram online;
  for (const auto& [name, h] : merged.histos()) {
    if (name.rfind("live.e2e_us.", 0) == 0) online.merge(h);
  }
  ASSERT_GT(online.count(), 0u);
  // NodeRemote traffic must land under the NodeRemote sketch name.
  EXPECT_GT(merged.histos().at("live.e2e_us.NodeRemote").count(), 0u);

  // Every traced remote delivery fed the sketch exactly once.
  EXPECT_EQ(online.count(), offline.count());

  // Percentile agreement within one log2 bucket — same bucket mapping by
  // construction (sketch::record uses histogram::bucket_index), so only
  // clock placement (event timestamp vs post-deliver now_us) can differ.
  for (const double p : {0.50, 0.99, 0.999}) {
    const int ob = tel::histogram::bucket_index(offline.percentile(p));
    const int lb = tel::histogram::bucket_index(online.percentile(p));
    EXPECT_LE(std::abs(ob - lb), 1)
        << "p" << p << ": offline " << offline.percentile(p) << "us online "
        << online.percentile(p) << "us";
  }
}

// ------------------------------------------------- statusz parse-back

TEST(Statusz, RenderParsesBackInProcess) {
  live_config_guard guard;
  tel::session session;
  tel::set_global(&session);
  const int w = session.begin_world(3);
  tel::rank_scope scope(session, w, /*rank=*/2);
  tel::add(tel::fast_counter::deliveries, 11);
  tel::live::gauge_set(live::gauge::outq_bytes, 512);
  tel::live::note_latency(3 /*NLNR*/, live::latency_kind::e2e, 1500.0);

  const json_value m = json_parser(live::statusz_render("metrics")).parse();
  ASSERT_TRUE(m.is_object());
  const auto& lanes = m.obj().at("lanes").arr();
  ASSERT_FALSE(lanes.empty());
  bool found = false;
  for (const auto& lv : lanes) {
    const auto& lo = lv.obj();
    if (static_cast<int>(lo.at("rank").num()) != 2) continue;
    found = true;
    EXPECT_DOUBLE_EQ(lo.at("counters").obj().at("mailbox.deliveries").num(),
                     11.0);
    EXPECT_DOUBLE_EQ(lo.at("gauges").obj().at("outq_bytes").num(), 512.0);
  }
  EXPECT_TRUE(found);

  const json_value l = json_parser(live::statusz_render("latency")).parse();
  bool nlnr_e2e = false;
  for (const auto& ev : l.obj().at("latency").arr()) {
    const auto& eo = ev.obj();
    if (eo.at("scheme").str() == "NLNR" && eo.at("kind").str() == "e2e") {
      nlnr_e2e = true;
      EXPECT_DOUBLE_EQ(eo.at("count").num(), 1.0);
      EXPECT_GT(eo.at("p50").num(), 0.0);
    }
  }
  EXPECT_TRUE(nlnr_e2e);

  const json_value h = json_parser(live::statusz_render("health")).parse();
  EXPECT_TRUE(std::get<bool>(h.obj().at("ok").v));
  EXPECT_GE(h.obj().at("lanes").num(), 1.0);

  // Unknown requests answer with a JSON error, never garbage.
  const json_value e = json_parser(live::statusz_render("bogus")).parse();
  EXPECT_TRUE(e.obj().count("error") == 1);
}

/// Query this process's own statusz endpoint over the real Unix socket.
/// Returns the parsed health "ok" flag, or false on any failure.
bool query_own_statusz_health() {
  const std::string path = live::statusz_dir() + "/ygm-statusz." +
                           std::to_string(getpid()) + ".sock";
  const std::string reply = live::statusz_query(path, "health");
  if (reply.empty()) return false;
  try {
    const json_value h = json_parser(reply).parse();
    return std::get<bool>(h.obj().at("ok").v);
  } catch (const std::exception&) {
    return false;
  }
}

TEST(Statusz, EndpointServesOverSocketOnBothBackends) {
  live_config_guard guard;
  tel::session session;
  tel::set_global(&session);

  for (const auto backend : {ygm::transport::backend_kind::inproc,
                             ygm::transport::backend_kind::socket}) {
    ygm::run_options opts;
    opts.nranks = 2;
    opts.backend = backend;
    opts.statusz = 1;    // the knob under test
    opts.sample_ms = 10; // health reports the sampler alongside
    const auto blobs = ygm::launch_collect(opts, [&](sim::comm& c) {
      comm_world world(c, topology(1, 2), scheme_kind::no_route);
      std::uint64_t received = 0;
      mailbox<probe_payload> mb(
          world, [&](const probe_payload&) { ++received; }, 64);
      mb.send((c.rank() + 1) % 2, probe_payload{1});
      mb.wait_empty();
      // Each OS process hosts one endpoint; on inproc both ranks share the
      // test binary's pid, on socket each forked child queries its own.
      std::vector<std::byte> out;
      out.push_back(std::byte{query_own_statusz_health() ? std::uint8_t{1}
                                                         : std::uint8_t{0}});
      return out;
    });
    for (const auto& b : blobs) {
      ASSERT_EQ(b.size(), 1u);
      EXPECT_EQ(std::to_integer<int>(b[0]), 1)
          << "backend " << ygm::transport::to_string(backend);
    }
  }
}

// ---------------------------------------- chaos sweep with the sampler on

/// 16-seed chaos shard with the live sampler ticking at 2 ms and causal
/// tracing feeding the sketches: the sampler/statusz reader path runs
/// concurrently with chaotic rank threads, and every delivery invariant
/// must still hold. (The inverse — sampler correctness under chaos — is
/// covered by construction: readers never take locks the writers hold.)
TEST(LiveChaos, InvariantsHoldWithSamplerAndSketchesOn) {
  live_config_guard guard;
  tel::session session;
  tel::set_global(&session);
  causal::set_sample_rate(1.0);

  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    trial_config t;
    t.seed = seed;
    t.scheme =
        ygm::routing::all_schemes[seed % std::size(ygm::routing::all_schemes)];
    t.nodes = (seed % 2) == 0 ? 2 : 1;
    t.cores = (seed % 2) == 0 ? 2 : 4;
    t.capacity = (seed % 3) == 0 ? 24 : 96;
    t.timed = false;
    t.msgs_per_rank = 20;
    t.bcasts_per_rank = 2;
    t.epochs = 1;
    t.chaos = (seed % 2) == 0 ? sim::chaos_config::light(seed)
                              : sim::chaos_config::heavy(seed);

    ygm::run_options opts;
    opts.nranks = t.num_ranks();
    opts.chaos = t.chaos;
    opts.sample_ms = 2;  // aggressive: many ticks per trial
    std::vector<std::string> violations;
    const auto blobs = ygm::launch_collect(opts, [&](sim::comm& c) {
      const auto local = (t.seed % 2) == 0
                             ? run_chaos_trial<mailbox>(c, t)
                             : run_chaos_trial<hybrid_mailbox>(c, t);
      std::vector<std::byte> out;
      ygm::ser::append_bytes(local, out);
      return out;
    });
    for (const auto& b : blobs) {
      const auto local =
          ygm::ser::from_bytes<std::vector<std::string>>({b.data(), b.size()});
      violations.insert(violations.end(), local.begin(), local.end());
    }
    EXPECT_TRUE(violations.empty())
        << "seed " << seed << ": " << violations.size()
        << " violation(s), first: "
        << (violations.empty() ? "" : violations.front());
  }
}

// ------------------------------------------------------- knob precedence

TEST(LiveKnobs, RunOptionsOverrideWinsAndRestores) {
  live_config_guard guard;
  live::set_sample_ms_override(-1);
  live::set_statusz_override(-1);
  const int env_default = live::resolved_sample_ms();

  {
    ygm::run_options opts;
    opts.nranks = 1;
    opts.sample_ms = 0;  // explicitly off for this run
    opts.statusz = 0;
    ygm::launch(opts, [&](sim::comm&) {
      EXPECT_EQ(live::resolved_sample_ms(), 0);
      EXPECT_FALSE(live::resolved_statusz());
    });
  }
  // scoped_run_defaults must restore the pre-run resolution.
  EXPECT_EQ(live::resolved_sample_ms(), env_default);
}

}  // namespace
