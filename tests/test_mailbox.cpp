// Integration and property tests for the YGM mailbox (core/) running over
// every routing scheme on a range of machine shapes.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/ygm.hpp"

namespace {

namespace sim = ygm::mpisim;
using ygm::core::comm_world;
using ygm::core::mailbox;
using ygm::routing::scheme_kind;
using ygm::routing::topology;

struct machine_case {
  scheme_kind kind;
  int nodes;
  int cores;
  std::size_t capacity;
};

std::string case_name(const ::testing::TestParamInfo<machine_case>& info) {
  return std::string(ygm::routing::to_string(info.param.kind)) + "_N" +
         std::to_string(info.param.nodes) + "_C" +
         std::to_string(info.param.cores) + "_cap" +
         std::to_string(info.param.capacity);
}

std::vector<machine_case> machine_cases() {
  std::vector<machine_case> cases;
  for (auto kind : ygm::routing::all_schemes) {
    for (auto [n, c] : {std::pair{1, 1}, {1, 4}, {2, 2}, {2, 4}, {4, 2},
                        {3, 3}, {4, 4}}) {
      cases.push_back({kind, n, c, 1024});
    }
    // Capacity extremes on one representative machine: tiny (flush on nearly
    // every send) and huge (everything rides the termination flush).
    cases.push_back({kind, 2, 4, 1});
    cases.push_back({kind, 2, 4, std::size_t{1} << 22});
  }
  return cases;
}

class MailboxMachines : public ::testing::TestWithParam<machine_case> {};

// -------------------------------------------------- point-to-point traffic

TEST_P(MailboxMachines, RandomTrafficDeliversExactlyOnce) {
  const auto& mc = GetParam();
  const topology topo(mc.nodes, mc.cores);
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, mc.kind);

    std::uint64_t recv_count = 0;
    std::uint64_t recv_sum = 0;
    mailbox<std::uint64_t> mb(
        world,
        [&](const std::uint64_t& v) {
          ++recv_count;
          recv_sum += v;
        },
        mc.capacity);

    ygm::xoshiro256 rng(42 + static_cast<std::uint64_t>(c.rank()));
    const int sends = 200 + static_cast<int>(rng.below(200));
    std::vector<std::uint64_t> count_to(static_cast<std::size_t>(c.size()), 0);
    std::vector<std::uint64_t> sum_to(static_cast<std::size_t>(c.size()), 0);
    for (int i = 0; i < sends; ++i) {
      const int dest =
          static_cast<int>(rng.below(static_cast<std::uint64_t>(c.size())));
      const std::uint64_t value = rng() >> 20;
      mb.send(dest, value);
      ++count_to[static_cast<std::size_t>(dest)];
      sum_to[static_cast<std::size_t>(dest)] += value;
    }
    mb.wait_empty();

    const auto expect_count = c.allreduce_vec(count_to, sim::op_sum{});
    const auto expect_sum = c.allreduce_vec(sum_to, sim::op_sum{});
    EXPECT_EQ(recv_count, expect_count[static_cast<std::size_t>(c.rank())]);
    EXPECT_EQ(recv_sum, expect_sum[static_cast<std::size_t>(c.rank())]);
  });
}

TEST_P(MailboxMachines, BroadcastReachesEveryOtherRankOnce) {
  const auto& mc = GetParam();
  const topology topo(mc.nodes, mc.cores);
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, mc.kind);

    std::vector<int> copies_from(static_cast<std::size_t>(c.size()), 0);
    mailbox<std::uint32_t> mb(
        world,
        [&](const std::uint32_t& origin) {
          ++copies_from[static_cast<std::size_t>(origin)];
        },
        mc.capacity);

    constexpr int kBcasts = 5;
    for (int i = 0; i < kBcasts; ++i) {
      mb.send_bcast(static_cast<std::uint32_t>(c.rank()));
    }
    mb.wait_empty();

    for (int origin = 0; origin < c.size(); ++origin) {
      EXPECT_EQ(copies_from[static_cast<std::size_t>(origin)],
                origin == c.rank() ? 0 : kBcasts)
          << "origin=" << origin << " at rank " << c.rank();
    }
  });
}

TEST_P(MailboxMachines, CallbackSpawnedCascadesTerminate) {
  // Each delivery with ttl > 0 spawns a new message — the data-dependent
  // cascade pattern of BFS/label-propagation. wait_empty must hold every
  // rank in the protocol until the whole cascade dies out.
  const auto& mc = GetParam();
  const topology topo(mc.nodes, mc.cores);
  struct hop_msg {
    std::uint32_t ttl = 0;
    std::uint64_t seed = 0;
  };
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, mc.kind);
    std::uint64_t deliveries = 0;
    mailbox<hop_msg>* mbp = nullptr;
    mailbox<hop_msg> mb(
        world,
        [&](const hop_msg& m) {
          ++deliveries;
          if (m.ttl > 0) {
            const auto next = ygm::splitmix64(m.seed);
            const int dest =
                static_cast<int>(next % static_cast<std::uint64_t>(c.size()));
            mbp->send(dest, hop_msg{m.ttl - 1, next});
          }
        },
        mc.capacity);
    mbp = &mb;

    constexpr std::uint32_t kTtl = 7;
    constexpr int kSeeds = 20;
    for (int i = 0; i < kSeeds; ++i) {
      const auto seed =
          ygm::splitmix64(static_cast<std::uint64_t>(c.rank()) * 1000 +
                          static_cast<std::uint64_t>(i));
      const int dest =
          static_cast<int>(seed % static_cast<std::uint64_t>(c.size()));
      mb.send(dest, hop_msg{kTtl, seed});
    }
    mb.wait_empty();

    // Every injected message is delivered ttl+1 times in total.
    const auto total = c.allreduce(deliveries, sim::op_sum{});
    EXPECT_EQ(total, static_cast<std::uint64_t>(c.size()) * kSeeds * (kTtl + 1));
  });
}

INSTANTIATE_TEST_SUITE_P(Machines, MailboxMachines,
                         ::testing::ValuesIn(machine_cases()), case_name);

// ------------------------------------------------------- focused behaviour

TEST(Mailbox, SelfSendDeliversImmediately) {
  sim::run(1, [](sim::comm& c) {
    comm_world world(c, 1, scheme_kind::no_route);
    int got = 0;
    mailbox<int> mb(world, [&](const int& v) { got = v; });
    mb.send(0, 41);
    EXPECT_EQ(got, 41);  // no flush or wait needed
    EXPECT_EQ(mb.stats().deliveries, 1u);
    mb.wait_empty();
  });
}

TEST(Mailbox, VariableLengthMessagesSurviveRouting) {
  const topology topo(2, 2);
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, scheme_kind::nlnr);
    std::map<std::string, std::vector<std::uint64_t>> received;
    using msg = std::pair<std::string, std::vector<std::uint64_t>>;
    mailbox<msg> mb(world, [&](const msg& m) { received[m.first] = m.second; });

    // Every rank sends a distinctly-shaped variable-length message to every
    // other rank.
    for (int d = 0; d < c.size(); ++d) {
      if (d == c.rank()) continue;
      std::string key = "from-" + std::to_string(c.rank());
      std::vector<std::uint64_t> body(
          static_cast<std::size_t>(c.rank() * 7 + d), 99);
      mb.send(d, {key, body});
    }
    mb.wait_empty();

    EXPECT_EQ(received.size(), static_cast<std::size_t>(c.size() - 1));
    for (int s = 0; s < c.size(); ++s) {
      if (s == c.rank()) continue;
      const auto it = received.find("from-" + std::to_string(s));
      ASSERT_NE(it, received.end());
      EXPECT_EQ(it->second.size(),
                static_cast<std::size_t>(s * 7 + c.rank()));
    }
  });
}

TEST(Mailbox, CapacityTriggersExchangesBeforeTermination) {
  const topology topo(2, 2);
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, scheme_kind::node_local);
    std::atomic<int> got{0};
    // Capacity of ~3 records: the 100-message stream must flush many times.
    mailbox<std::uint64_t> mb(world, [&](const std::uint64_t&) { ++got; }, 32);
    const int dest = (c.rank() + 1) % c.size();
    for (int i = 0; i < 100; ++i) mb.send(dest, 7);
    EXPECT_GT(mb.stats().flushes, 10u);
    mb.wait_empty();
    EXPECT_EQ(got.load(), 100);
  });
}

TEST(Mailbox, StatsAccountForRoutedTraffic) {
  const topology topo(2, 2);
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, scheme_kind::node_local);
    mailbox<std::uint64_t> mb(world, [](const std::uint64_t&) {}, 256);
    // (n,0) -> other node, core 1: one local hop plus one remote hop.
    const int dest = topo.rank_of(1 - world.node(), 1 - world.core());
    constexpr int kCount = 50;
    for (int i = 0; i < kCount; ++i) mb.send(dest, 1);
    mb.wait_empty();

    const auto& st = mb.stats();
    EXPECT_EQ(st.app_sends, kCount);
    EXPECT_EQ(st.deliveries, kCount);  // symmetric traffic
    // Every message makes two hops (local + remote) under NodeLocal.
    const auto total_hops = c.allreduce(st.hops_sent, sim::op_sum{});
    EXPECT_EQ(total_hops, static_cast<std::uint64_t>(2 * kCount * c.size()));
    const auto recv_hops = c.allreduce(st.hops_received, sim::op_sum{});
    EXPECT_EQ(recv_hops, total_hops);
    // Each rank forwarded the traffic of exactly one peer.
    EXPECT_EQ(st.forwards, kCount);
    EXPECT_GT(st.local_bytes, 0u);
    EXPECT_GT(st.remote_bytes, 0u);
  });
}

TEST(Mailbox, AvgRemotePacketSizeGrowsWithRouting) {
  // The §III-E effect, observed on the executed mailbox: for the same
  // uniform traffic and capacity, NLNR produces larger wire packets than
  // NoRoute because each core has far fewer remote partners.
  const topology topo(4, 4);
  const auto avg_remote_packet = [&](scheme_kind kind) {
    double result = 0;
    sim::run(topo.num_ranks(), [&](sim::comm& c) {
      comm_world world(c, topo, kind);
      mailbox<std::uint64_t> mb(world, [](const std::uint64_t&) {}, 4096);
      ygm::xoshiro256 rng(5 + static_cast<std::uint64_t>(c.rank()));
      for (int i = 0; i < 2000; ++i) {
        const int dest =
            static_cast<int>(rng.below(static_cast<std::uint64_t>(c.size())));
        mb.send(dest, rng());
      }
      mb.wait_empty();
      const auto bytes = c.allreduce(mb.stats().remote_bytes, sim::op_sum{});
      const auto pkts = c.allreduce(mb.stats().remote_packets, sim::op_sum{});
      if (c.rank() == 0) {
        result = static_cast<double>(bytes) / static_cast<double>(pkts);
      }
    });
    return result;
  };
  const double no_route = avg_remote_packet(scheme_kind::no_route);
  const double nlnr = avg_remote_packet(scheme_kind::nlnr);
  EXPECT_GT(nlnr, 1.5 * no_route);
}

TEST(Mailbox, MultipleMailboxesShareOneWorld) {
  const topology topo(2, 2);
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, scheme_kind::node_remote);
    std::uint64_t sum_a = 0;
    int count_b = 0;
    mailbox<std::uint64_t> a(world, [&](const std::uint64_t& v) { sum_a += v; });
    mailbox<std::string> b(world, [&](const std::string&) { ++count_b; });

    for (int d = 0; d < c.size(); ++d) {
      if (d == c.rank()) continue;
      a.send(d, 10);
      b.send(d, "text");
    }
    a.wait_empty();
    b.wait_empty();
    EXPECT_EQ(sum_a, 10u * (c.size() - 1));
    EXPECT_EQ(count_b, c.size() - 1);
  });
}

TEST(Mailbox, RejectsInvalidConstruction) {
  sim::run(1, [](sim::comm& c) {
    comm_world world(c, 1, scheme_kind::no_route);
    EXPECT_THROW(mailbox<int>(world, nullptr), ygm::error);
    EXPECT_THROW(mailbox<int>(world, [](const int&) {}, 0), ygm::error);
  });
}

TEST(Mailbox, RejectsOutOfRangeDestination) {
  sim::run(2, [](sim::comm& c) {
    comm_world world(c, 1, scheme_kind::no_route);
    mailbox<int> mb(world, [](const int&) {});
    EXPECT_THROW(mb.send(-1, 0), ygm::error);
    EXPECT_THROW(mb.send(2, 0), ygm::error);
    mb.wait_empty();
  });
}

TEST(CommWorld, ValidatesTopologyAgainstCommSize) {
  sim::run(4, [](sim::comm& c) {
    EXPECT_THROW(comm_world(c, topology(2, 4), scheme_kind::no_route),
                 ygm::error);
    EXPECT_THROW(comm_world(c, 3, scheme_kind::no_route), ygm::error);
    comm_world ok(c, 2, scheme_kind::nlnr);
    EXPECT_EQ(ok.topo().nodes, 2);
    EXPECT_EQ(ok.topo().cores, 2);
    EXPECT_EQ(ok.node(), c.rank() / 2);
    EXPECT_EQ(ok.core(), c.rank() % 2);
  });
}

}  // namespace
// (appended) oversubscribed large-world stress

TEST(MailboxStress, SixtyFourRankWorldDeliversUnderAllSchemes) {
  // 8 nodes x 8 cores = 64 rank-threads on this host: heavy
  // oversubscription plus every routing role (origin, sending gateway,
  // receiving gateway) active at once.
  const topology topo(8, 8);
  for (const auto kind : ygm::routing::all_schemes) {
    sim::run(topo.num_ranks(), [&](sim::comm& c) {
      comm_world world(c, topo, kind);
      std::uint64_t got = 0;
      mailbox<std::uint64_t> mb(world, [&](const std::uint64_t& v) { got += v; },
                                512);
      ygm::xoshiro256 rng(900 + static_cast<std::uint64_t>(c.rank()));
      constexpr int kSends = 300;
      for (int i = 0; i < kSends; ++i) {
        mb.send(static_cast<int>(rng.below(
                    static_cast<std::uint64_t>(c.size()))),
                1);
      }
      mb.send_bcast(1000);
      mb.wait_empty();
      const auto total = c.allreduce(got, sim::op_sum{});
      const auto expect =
          static_cast<std::uint64_t>(c.size()) * kSends +
          1000ULL * static_cast<std::uint64_t>(c.size()) *
              static_cast<std::uint64_t>(c.size() - 1);
      EXPECT_EQ(total, expect) << ygm::routing::to_string(kind);
    });
  }
}

// (appended) chaos-PR regression tests: capacity accounting of the timed
// arrival stamp, and reentrant progress calls from a receive callback.

TEST(Mailbox, TimedArrivalStampCountsTowardCapacity) {
  // In a timed world each wire packet starts with an 8-byte virtual-time
  // arrival stamp. The stamp is part of what gets sent, so it must count
  // toward queued_bytes_: with capacity equal to stamp + one record, a
  // single send fills the buffer exactly and must trigger a flush.
  sim::run(2, [](sim::comm& c) {
    comm_world world(c, 2, scheme_kind::no_route);
    world.attach_virtual_network(ygm::net::network_params::quartz_like());
    const std::size_t one_record =
        ygm::core::packet_record_size(1, sizeof(std::uint64_t));
    mailbox<std::uint64_t> mb(world, [](const std::uint64_t&) {},
                              sizeof(double) + one_record);
    mb.send(1 - c.rank(), 99);
    EXPECT_EQ(mb.stats().flushes, 1u);
    mb.wait_empty();
    EXPECT_EQ(mb.stats().deliveries, 1u);
  });
}

TEST(Mailbox, ReentrantPollFromCallbackIsANoOp) {
  // A receive callback that drives progress itself (poll / test_empty — the
  // HavoqGT work-queue pattern) must not recursively re-enter the incoming
  // drain: with many packets queued that recursion nests once per packet
  // and clobbers the forwarding scratch buffer. Reentrant calls are no-ops.
  sim::run(2, [](sim::comm& c) {
    comm_world world(c, 1, scheme_kind::no_route);
    mailbox<std::uint64_t>* mbp = nullptr;
    int depth = 0;
    int max_depth = 0;
    std::uint64_t got = 0;
    mailbox<std::uint64_t> mb(
        world,
        [&](const std::uint64_t& v) {
          ++depth;
          if (depth > max_depth) max_depth = depth;
          got += v;
          mbp->poll();
          mbp->test_empty();
          --depth;
        },
        64);
    mbp = &mb;
    if (c.rank() == 1) {
      for (int i = 0; i < 100; ++i) mb.send(0, 1);
    }
    mb.wait_empty();
    if (c.rank() == 0) {
      EXPECT_EQ(got, 100u);
      EXPECT_EQ(max_depth, 1);
    }
  });
}
