// Model-vs-execution validation: the analytic evaluator (net/) claims to
// compute the same per-core traffic the mailbox actually generates. These
// tests run the real mailbox under the evaluator's traffic assumptions
// (uniform all-to-all, broadcast floods) and compare flows — the
// cross-validation that justifies using the evaluator at paper scale
// (DESIGN.md §2, EXPERIMENTS.md).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/ygm.hpp"

namespace {

namespace sim = ygm::mpisim;
using ygm::core::comm_world;
using ygm::core::mailbox;
using ygm::core::mailbox_stats;
using ygm::routing::router;
using ygm::routing::scheme_kind;
using ygm::routing::topology;

// Drive uniform all-to-all traffic (kMsgs fixed-size messages per rank) and
// return the aggregate stats across all ranks.
mailbox_stats run_uniform(const topology& topo, scheme_kind kind, int msgs,
                          std::size_t capacity) {
  mailbox_stats agg;
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, kind);
    mailbox<std::uint64_t> mb(world, [](const std::uint64_t&) {}, capacity);
    ygm::xoshiro256 rng(5 + static_cast<std::uint64_t>(c.rank()));
    for (int i = 0; i < msgs; ++i) {
      // Uniform over *other* ranks (self-sends skip the wire and would
      // dilute the comparison).
      int dest = static_cast<int>(
          rng.below(static_cast<std::uint64_t>(c.size() - 1)));
      if (dest >= c.rank()) ++dest;
      mb.send(dest, rng());
    }
    mb.wait_empty();
    const auto rows = c.gather(mb.stats(), 0);
    if (c.rank() == 0) {
      for (const auto& s : rows) agg += s;
    }
  });
  return agg;
}

class ModelValidation : public ::testing::TestWithParam<scheme_kind> {};

TEST_P(ModelValidation, RemoteAndLocalByteFlowsMatchEvaluator) {
  const topology topo(4, 4);
  const int msgs = 4000;
  const std::size_t capacity = 2048;

  // Each u64 message costs 8 payload bytes + 2 framing bytes on the wire.
  const double wire_msg_bytes = 10.0;

  const auto agg = run_uniform(topo, GetParam(), msgs, capacity);

  ygm::net::traffic_model tm;
  tm.p2p_bytes = msgs * wire_msg_bytes;
  tm.p2p_msg_bytes = wire_msg_bytes;
  const auto predicted =
      ygm::net::evaluate(router(GetParam(), topo),
                         ygm::net::network_params::quartz_like(), capacity,
                         tm);

  const double ranks = topo.num_ranks();
  const double measured_remote = static_cast<double>(agg.remote_bytes) / ranks;
  const double measured_local = static_cast<double>(agg.local_bytes) / ranks;

  // Byte flows are structural (hop counts x volume); they must agree to
  // within the framing approximation.
  EXPECT_NEAR(measured_remote, predicted.remote_bytes,
              0.15 * predicted.remote_bytes + 1)
      << ygm::routing::to_string(GetParam());
  if (predicted.local_bytes > 0) {
    EXPECT_NEAR(measured_local, predicted.local_bytes,
                0.15 * predicted.local_bytes + 1);
  } else {
    EXPECT_EQ(measured_local, 0);
  }

  // Hop/event totals: sends == receives, and per-core handled events match
  // the evaluator's count.
  EXPECT_EQ(agg.hops_sent, agg.hops_received);
  const double measured_events =
      static_cast<double>(agg.hops_sent + agg.hops_received) / ranks;
  EXPECT_NEAR(measured_events, predicted.handled_msgs,
              0.1 * predicted.handled_msgs);
}

TEST_P(ModelValidation, BroadcastFlowsMatchEvaluator) {
  const topology topo(4, 4);
  const int bcasts = 200;
  const std::size_t capacity = 2048;

  mailbox_stats agg;
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, GetParam());
    mailbox<std::uint64_t> mb(world, [](const std::uint64_t&) {}, capacity);
    for (int i = 0; i < bcasts; ++i) {
      mb.send_bcast(static_cast<std::uint64_t>(i));
    }
    mb.wait_empty();
    const auto rows = c.gather(mb.stats(), 0);
    if (c.rank() == 0) {
      for (const auto& s : rows) agg += s;
    }
  });

  ygm::net::traffic_model tm;
  tm.bcast_count = bcasts;
  tm.bcast_msg_bytes = 10.0;  // u64 payload + framing
  const auto predicted =
      ygm::net::evaluate(router(GetParam(), topo),
                         ygm::net::network_params::quartz_like(), capacity,
                         tm);

  const double ranks = topo.num_ranks();
  EXPECT_NEAR(static_cast<double>(agg.remote_bytes) / ranks,
              predicted.remote_bytes, 0.15 * predicted.remote_bytes + 1)
      << ygm::routing::to_string(GetParam());
  EXPECT_NEAR(static_cast<double>(agg.local_bytes) / ranks,
              predicted.local_bytes, 0.15 * predicted.local_bytes + 1);

  // And the §III formulas directly: total remote hop records equal
  // bcasts * ranks * bcast_remote_messages().
  const router r(GetParam(), topo);
  const auto expected_remote_records =
      static_cast<std::uint64_t>(bcasts) *
      static_cast<std::uint64_t>(topo.num_ranks()) *
      static_cast<std::uint64_t>(r.bcast_remote_messages());
  // remote hop records = hops_sent minus local hop records; recover local
  // records from the tree structure instead: every rank receives each
  // foreign bcast exactly once => total receives = bcasts * P * (P-1)...
  // hops include forwarding, so compare via bytes: remote records =
  // remote_bytes / wire bytes per record.
  const double records =
      static_cast<double>(agg.remote_bytes) / tm.bcast_msg_bytes;
  EXPECT_NEAR(records, static_cast<double>(expected_remote_records),
              0.15 * static_cast<double>(expected_remote_records) + 1);
}

TEST_P(ModelValidation, PacketSizeOrderingMatchesPrediction) {
  // The evaluator's central claim: for fixed capacity, schemes order wire
  // packet sizes as NoRoute < NodeLocal/NodeRemote < NLNR. Verify the
  // executed mailbox produces the same ordering (pairwise against NoRoute).
  const topology topo(4, 4);
  if (GetParam() == scheme_kind::no_route) GTEST_SKIP();
  const auto base = run_uniform(topo, scheme_kind::no_route, 3000, 2048);
  const auto routed = run_uniform(topo, GetParam(), 3000, 2048);
  EXPECT_GT(routed.avg_remote_packet_bytes(),
            base.avg_remote_packet_bytes())
      << ygm::routing::to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, ModelValidation,
    ::testing::ValuesIn(std::vector<scheme_kind>(
        std::begin(ygm::routing::all_schemes),
        std::end(ygm::routing::all_schemes))),
    [](const ::testing::TestParamInfo<scheme_kind>& info) {
      return std::string(ygm::routing::to_string(info.param));
    });

}  // namespace
