// Unit, integration, and stress tests for the mpisim runtime (mpisim/).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <numeric>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "mpisim/runtime.hpp"

namespace {

namespace sim = ygm::mpisim;

TEST(Runtime, RunsEveryRankExactlyOnce) {
  std::atomic<int> count{0};
  std::atomic<std::uint64_t> rank_mask{0};
  sim::run(8, [&](sim::comm& c) {
    count.fetch_add(1);
    rank_mask.fetch_or(1ULL << c.rank());
    EXPECT_EQ(c.size(), 8);
  });
  EXPECT_EQ(count.load(), 8);
  EXPECT_EQ(rank_mask.load(), 0xffu);
}

TEST(Runtime, SingleRankWorldWorks) {
  sim::run(1, [](sim::comm& c) {
    EXPECT_EQ(c.rank(), 0);
    EXPECT_EQ(c.size(), 1);
    c.barrier();
    int v = 9;
    c.bcast(v, 0);
    EXPECT_EQ(v, 9);
    EXPECT_EQ(c.allreduce(4, sim::op_sum{}), 4);
  });
}

TEST(Runtime, PropagatesRankExceptionsWithoutDeadlock) {
  EXPECT_THROW(sim::run(4,
                        [](sim::comm& c) {
                          if (c.rank() == 2) {
                            throw std::runtime_error("rank 2 failed");
                          }
                          // Other ranks block forever; the abort must wake
                          // them.
                          (void)c.recv_bytes(sim::any_source, 0);
                        }),
               std::runtime_error);
}

TEST(Runtime, RejectsNonPositiveRankCount) {
  EXPECT_THROW(sim::run(0, [](sim::comm&) {}), ygm::error);
}

// --------------------------------------------------------- point-to-point

TEST(PointToPoint, SendRecvRoundTrip) {
  sim::run(2, [](sim::comm& c) {
    if (c.rank() == 0) {
      c.send(std::string("ping"), 1, 7);
      EXPECT_EQ(c.recv<std::string>(1, 8), "pong");
    } else {
      EXPECT_EQ(c.recv<std::string>(0, 7), "ping");
      c.send(std::string("pong"), 0, 8);
    }
  });
}

TEST(PointToPoint, SelfSendIsDeliverable) {
  sim::run(1, [](sim::comm& c) {
    c.send(42, 0, 3);
    EXPECT_EQ(c.recv<int>(0, 3), 42);
  });
}

TEST(PointToPoint, PreservesOrderPerSenderAndTag) {
  sim::run(2, [](sim::comm& c) {
    constexpr int kCount = 500;
    if (c.rank() == 0) {
      for (int i = 0; i < kCount; ++i) c.send(i, 1, 1);
    } else {
      for (int i = 0; i < kCount; ++i) {
        EXPECT_EQ(c.recv<int>(0, 1), i);
      }
    }
  });
}

TEST(PointToPoint, TagMatchingSelectsAcrossArrivalOrder) {
  sim::run(2, [](sim::comm& c) {
    if (c.rank() == 0) {
      c.send(1, 1, 10);
      c.send(2, 1, 20);
      c.send(3, 1, 30);
    } else {
      // Receive out of arrival order by tag.
      EXPECT_EQ(c.recv<int>(0, 30), 3);
      EXPECT_EQ(c.recv<int>(0, 10), 1);
      EXPECT_EQ(c.recv<int>(0, 20), 2);
    }
  });
}

TEST(PointToPoint, AnySourceReceivesFromEveryone) {
  sim::run(6, [](sim::comm& c) {
    if (c.rank() == 0) {
      std::vector<bool> seen(static_cast<std::size_t>(c.size()), false);
      for (int i = 1; i < c.size(); ++i) {
        sim::status st;
        const int v = c.recv<int>(sim::any_source, 5, &st);
        EXPECT_EQ(v, st.source * 100);
        EXPECT_FALSE(seen[static_cast<std::size_t>(st.source)]);
        seen[static_cast<std::size_t>(st.source)] = true;
      }
    } else {
      c.send(c.rank() * 100, 0, 5);
    }
  });
}

TEST(PointToPoint, AnyTagReportsActualTag) {
  sim::run(2, [](sim::comm& c) {
    if (c.rank() == 0) {
      c.send(std::string("x"), 1, 17);
    } else {
      sim::status st;
      (void)c.recv<std::string>(0, sim::any_tag, &st);
      EXPECT_EQ(st.tag, 17);
      EXPECT_EQ(st.source, 0);
    }
  });
}

TEST(PointToPoint, StatusReportsByteCount) {
  sim::run(2, [](sim::comm& c) {
    if (c.rank() == 0) {
      c.send_bytes(1, 2, std::vector<std::byte>(123));
    } else {
      sim::status st;
      const auto bytes = c.recv_bytes(0, 2, &st);
      EXPECT_EQ(bytes.size(), 123u);
      EXPECT_EQ(st.byte_count, 123u);
    }
  });
}

TEST(PointToPoint, ProbeDoesNotConsume) {
  sim::run(2, [](sim::comm& c) {
    if (c.rank() == 0) {
      c.send(7, 1, 4);
    } else {
      const auto st = c.probe(0, 4);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 4);
      // Probe twice, then the message must still be receivable.
      ASSERT_TRUE(c.iprobe(0, 4).has_value());
      EXPECT_EQ(c.recv<int>(0, 4), 7);
      EXPECT_FALSE(c.iprobe(0, 4).has_value());
    }
  });
}

TEST(PointToPoint, IprobeReturnsNulloptWhenEmpty) {
  sim::run(2, [](sim::comm& c) {
    EXPECT_FALSE(c.iprobe(sim::any_source, 999).has_value());
    c.barrier();
  });
}

TEST(PointToPoint, RejectsOutOfRangeTag) {
  sim::run(1, [](sim::comm& c) {
    EXPECT_THROW(c.send(1, 0, -5), ygm::error);
    EXPECT_THROW(c.send(1, 0, sim::tag_ub + 1), ygm::error);
  });
}

// ------------------------------------------------------------ nonblocking

TEST(Nonblocking, IsendCompletesImmediately) {
  sim::run(2, [](sim::comm& c) {
    if (c.rank() == 0) {
      auto req = c.isend(11, 1, 0);
      EXPECT_TRUE(req.test());
      req.wait();
    } else {
      EXPECT_EQ(c.recv<int>(0, 0), 11);
    }
  });
}

TEST(Nonblocking, IrecvCompletesWhenMessageArrives) {
  sim::run(2, [](sim::comm& c) {
    if (c.rank() == 1) {
      int out = 0;
      auto req = c.irecv(out, 0, 6);
      c.send(1, 0, 60);  // tell rank 0 we have posted
      req.wait();
      EXPECT_EQ(out, 99);
    } else {
      EXPECT_EQ(c.recv<int>(1, 60), 1);
      c.send(99, 1, 6);
    }
  });
}

TEST(Nonblocking, WaitAllDrainsMixedRequests) {
  sim::run(4, [](sim::comm& c) {
    std::vector<int> out(static_cast<std::size_t>(c.size()), -1);
    std::vector<sim::request> reqs;
    for (int r = 0; r < c.size(); ++r) {
      if (r == c.rank()) continue;
      reqs.push_back(c.isend(c.rank(), r, 1));
      reqs.push_back(c.irecv(out[static_cast<std::size_t>(r)], r, 1));
    }
    sim::wait_all(reqs);
    for (int r = 0; r < c.size(); ++r) {
      if (r != c.rank()) {
        EXPECT_EQ(out[static_cast<std::size_t>(r)], r);
      }
    }
  });
}

// ------------------------------------------------------------ collectives

TEST(Collectives, BarrierSynchronizes) {
  // Each rank increments before the barrier; after it, all increments must
  // be visible.
  std::atomic<int> before{0};
  sim::run(8, [&](sim::comm& c) {
    before.fetch_add(1);
    c.barrier();
    EXPECT_EQ(before.load(), 8);
  });
}

TEST(Collectives, BcastFromEveryRoot) {
  sim::run(5, [](sim::comm& c) {
    for (int root = 0; root < c.size(); ++root) {
      std::string v = c.rank() == root ? "payload" + std::to_string(root) : "";
      c.bcast(v, root);
      EXPECT_EQ(v, "payload" + std::to_string(root));
    }
  });
}

TEST(Collectives, ReduceSumsAtRoot) {
  sim::run(7, [](sim::comm& c) {
    const int total = c.reduce(c.rank() + 1, sim::op_sum{}, 3);
    if (c.rank() == 3) {
      EXPECT_EQ(total, 7 * 8 / 2);
    }
  });
}

TEST(Collectives, AllreduceAgreesEverywhere) {
  sim::run(6, [](sim::comm& c) {
    EXPECT_EQ(c.allreduce(c.rank(), sim::op_max{}), c.size() - 1);
    EXPECT_EQ(c.allreduce(c.rank(), sim::op_min{}), 0);
    EXPECT_EQ(c.allreduce(1ULL << c.rank(), sim::op_bor{}), 0x3fULL);
  });
}

TEST(Collectives, AllreduceVecIsElementwise) {
  sim::run(4, [](sim::comm& c) {
    std::vector<int> v{c.rank(), 10 * c.rank(), 1};
    const auto r = c.allreduce_vec(v, sim::op_sum{});
    EXPECT_EQ(r, (std::vector<int>{6, 60, 4}));
  });
}

TEST(Collectives, GatherOrdersByRank) {
  sim::run(5, [](sim::comm& c) {
    const auto got = c.gather(std::string(1, static_cast<char>('a' + c.rank())),
                              2);
    if (c.rank() == 2) {
      ASSERT_EQ(got.size(), 5u);
      EXPECT_EQ(got[0], "a");
      EXPECT_EQ(got[4], "e");
    } else {
      EXPECT_TRUE(got.empty());
    }
  });
}

TEST(Collectives, AllgatherAgreesEverywhere) {
  sim::run(4, [](sim::comm& c) {
    const auto got = c.allgather(c.rank() * c.rank());
    EXPECT_EQ(got, (std::vector<int>{0, 1, 4, 9}));
  });
}

TEST(Collectives, ScatterDeliversPerRankPieces) {
  sim::run(4, [](sim::comm& c) {
    std::vector<std::vector<int>> bufs;
    if (c.rank() == 1) {
      for (int r = 0; r < 4; ++r) bufs.push_back({r, r + 10});
    }
    const auto mine = c.scatter(bufs, 1);
    EXPECT_EQ(mine, (std::vector<int>{c.rank(), c.rank() + 10}));
  });
}

TEST(Collectives, AlltoallvExchangesPersonalizedData) {
  sim::run(5, [](sim::comm& c) {
    std::vector<std::vector<int>> send(static_cast<std::size_t>(c.size()));
    for (int d = 0; d < c.size(); ++d) {
      // rank r sends d copies of (r*100 + d) to rank d.
      send[static_cast<std::size_t>(d)]
          .assign(static_cast<std::size_t>(d), c.rank() * 100 + d);
    }
    const auto got = c.alltoallv(send);
    ASSERT_EQ(got.size(), static_cast<std::size_t>(c.size()));
    for (int s = 0; s < c.size(); ++s) {
      const auto& v = got[static_cast<std::size_t>(s)];
      ASSERT_EQ(v.size(), static_cast<std::size_t>(c.rank()));
      for (int x : v) EXPECT_EQ(x, s * 100 + c.rank());
    }
  });
}

TEST(Collectives, WtimeAdvancesMonotonically) {
  sim::run(2, [](sim::comm& c) {
    const double t0 = c.wtime();
    c.barrier();
    const double t1 = c.wtime();
    EXPECT_GE(t1, t0);
  });
}

// ----------------------------------------------------------- communicators

TEST(Communicators, SplitByParityFormsTwoGroups) {
  sim::run(8, [](sim::comm& c) {
    auto sub = c.split(c.rank() % 2, c.rank());
    EXPECT_EQ(sub.size(), 4);
    EXPECT_EQ(sub.rank(), c.rank() / 2);
    // Sum of parent ranks within my group.
    const int expect = c.rank() % 2 == 0 ? 0 + 2 + 4 + 6 : 1 + 3 + 5 + 7;
    EXPECT_EQ(sub.allreduce(c.rank(), sim::op_sum{}), expect);
  });
}

TEST(Communicators, SplitKeyControlsOrdering) {
  sim::run(4, [](sim::comm& c) {
    // Reverse the ordering: highest parent rank gets rank 0.
    auto sub = c.split(0, -c.rank());
    EXPECT_EQ(sub.rank(), c.size() - 1 - c.rank());
  });
}

TEST(Communicators, SubCommTrafficDoesNotLeakAcrossComms) {
  sim::run(4, [](sim::comm& c) {
    auto sub = c.split(c.rank() % 2, 0);
    // Same tag on both communicators; messages must stay segregated.
    const int peer_sub = 1 - sub.rank();
    const int peer_world = (c.rank() + 2) % 4;
    sub.send(1000 + c.rank(), peer_sub, 3);
    c.send(2000 + c.rank(), peer_world, 3);
    const int from_sub = sub.recv<int>(peer_sub, 3);
    const int from_world = c.recv<int>(peer_world, 3);
    EXPECT_GE(from_sub, 1000);
    EXPECT_LT(from_sub, 2000);
    EXPECT_GE(from_world, 2000);
  });
}

TEST(Communicators, GridSplitSupportsRowAndColumnComms) {
  // The 2D decomposition pattern CombBLAS-lite uses.
  sim::run(9, [](sim::comm& c) {
    const int row = c.rank() / 3;
    const int col = c.rank() % 3;
    auto row_comm = c.split(row, col);
    auto col_comm = c.split(col, row);
    EXPECT_EQ(row_comm.size(), 3);
    EXPECT_EQ(col_comm.size(), 3);
    EXPECT_EQ(row_comm.rank(), col);
    EXPECT_EQ(col_comm.rank(), row);
    EXPECT_EQ(row_comm.allreduce(col, sim::op_sum{}), 3);
    EXPECT_EQ(col_comm.allreduce(row, sim::op_sum{}), 3);
  });
}

TEST(Communicators, DupIsolatesTraffic) {
  sim::run(2, [](sim::comm& c) {
    auto d = c.dup();
    const int peer = 1 - c.rank();
    c.send(1, peer, 0);
    d.send(2, peer, 0);
    EXPECT_EQ(d.recv<int>(peer, 0), 2);
    EXPECT_EQ(c.recv<int>(peer, 0), 1);
  });
}

// ---------------------------------------------------------------- stress

class MpisimStress : public ::testing::TestWithParam<int> {};

TEST_P(MpisimStress, RandomizedTrafficIsDeliveredExactly) {
  const int nranks = GetParam();
  // Each rank sends a random number of tagged messages to random peers,
  // then totals are reconciled with an allreduce and received exactly.
  sim::run(nranks, [&](sim::comm& c) {
    ygm::xoshiro256 rng(1000 + static_cast<std::uint64_t>(c.rank()));
    const int sends = 50 + static_cast<int>(rng.below(100));
    std::vector<std::uint64_t> sent_to(static_cast<std::size_t>(c.size()), 0);
    std::vector<std::uint64_t> sum_to(static_cast<std::size_t>(c.size()), 0);
    for (int i = 0; i < sends; ++i) {
      const int dest = static_cast<int>(rng.below(
          static_cast<std::uint64_t>(c.size())));
      const std::uint64_t value = rng();
      c.send(value, dest, 9);
      ++sent_to[static_cast<std::size_t>(dest)];
      sum_to[static_cast<std::size_t>(dest)] += value;
    }
    const auto expected_count = c.allreduce_vec(sent_to, sim::op_sum{});
    const auto expected_sum = c.allreduce_vec(sum_to, sim::op_sum{});

    std::uint64_t got_sum = 0;
    const auto my_count = expected_count[static_cast<std::size_t>(c.rank())];
    for (std::uint64_t i = 0; i < my_count; ++i) {
      got_sum += c.recv<std::uint64_t>(sim::any_source, 9);
    }
    EXPECT_EQ(got_sum, expected_sum[static_cast<std::size_t>(c.rank())]);
    EXPECT_FALSE(c.iprobe(sim::any_source, 9).has_value());
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, MpisimStress,
                         ::testing::Values(1, 2, 3, 8, 16));

}  // namespace
// (appended) request/comm edge cases and large payloads

TEST(Nonblocking, TestAllMakesProgressIncrementally) {
  sim::run(3, [](sim::comm& c) {
    if (c.rank() == 0) {
      int a = 0, b = 0;
      std::vector<sim::request> reqs;
      reqs.push_back(c.irecv(a, 1, 5));
      reqs.push_back(c.irecv(b, 2, 5));
      // Not complete until both arrive.
      c.send(1, 1, 9);  // release rank 1
      while (!sim::test_all(reqs)) {
      }
      EXPECT_EQ(a, 100);
      EXPECT_EQ(b, 200);
    } else if (c.rank() == 1) {
      (void)c.recv<int>(0, 9);
      c.send(100, 0, 5);
    } else {
      c.send(200, 0, 5);
    }
  });
}

TEST(PointToPoint, MegabytePayloadsSurvive) {
  sim::run(2, [](sim::comm& c) {
    const std::size_t n = 4 << 20;
    if (c.rank() == 0) {
      std::vector<std::uint8_t> big(n);
      for (std::size_t i = 0; i < n; ++i) {
        big[i] = static_cast<std::uint8_t>(i * 31);
      }
      c.send(big, 1, 2);
    } else {
      const auto got = c.recv<std::vector<std::uint8_t>>(0, 2);
      ASSERT_EQ(got.size(), n);
      EXPECT_EQ(got[0], 0);
      EXPECT_EQ(got[12345], static_cast<std::uint8_t>(12345u * 31));
      EXPECT_EQ(got[n - 1], static_cast<std::uint8_t>((n - 1) * 31));
    }
  });
}

TEST(Communicators, NestedSplitsCompose) {
  // Split a split: 8 -> two halves -> quarters; traffic stays scoped.
  sim::run(8, [](sim::comm& c) {
    auto half = c.split(c.rank() / 4, c.rank());
    auto quarter = half.split(half.rank() / 2, half.rank());
    EXPECT_EQ(half.size(), 4);
    EXPECT_EQ(quarter.size(), 2);
    const int peer = 1 - quarter.rank();
    quarter.send(c.rank(), peer, 0);
    const int got = quarter.recv<int>(peer, 0);
    // My quarter peer is the world rank differing by exactly 1 within the
    // same pair.
    EXPECT_EQ(got / 2, c.rank() / 2);
    EXPECT_NE(got, c.rank());
  });
}

TEST(Collectives, ManyBackToBackCollectivesKeepSequencing) {
  // Hammer the collective tag sequencing (seq wraps packed into tags).
  sim::run(4, [](sim::comm& c) {
    for (int i = 0; i < 300; ++i) {
      int v = c.rank() == i % 4 ? i : -1;
      c.bcast(v, i % 4);
      ASSERT_EQ(v, i);
      ASSERT_EQ(c.allreduce(1, sim::op_sum{}), 4);
    }
  });
}

TEST(PointToPoint, PendingMessagesCountsQueuedTraffic) {
  sim::run(2, [](sim::comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 5; ++i) c.send(i, 1, 3);
      c.barrier();
    } else {
      c.barrier();
      EXPECT_EQ(c.pending_messages(), 5u);
      for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(c.recv<int>(0, 3), i);
      }
      EXPECT_EQ(c.pending_messages(), 0u);
    }
  });
}
