// Tests for the network performance model and analytic evaluator (net/).
#include <gtest/gtest.h>

#include <vector>

#include "net/evaluator.hpp"
#include "net/params.hpp"

namespace {

using ygm::net::evaluate;
using ygm::net::network_params;
using ygm::net::traffic_model;
using ygm::routing::router;
using ygm::routing::scheme_kind;
using ygm::routing::topology;

// ----------------------------------------------------------- link model

TEST(LinkModel, BandwidthRisesWithinEagerRegime) {
  const auto np = network_params::quartz_like();
  double prev = 0;
  for (std::size_t s = 1; s < np.remote.eager_threshold; s *= 2) {
    const double bw = np.remote.bandwidth(static_cast<double>(s));
    EXPECT_GT(bw, prev);
    prev = bw;
  }
}

TEST(LinkModel, EagerToRendezvousSwitchDipsBandwidth) {
  // The paper's Fig. 5 shows a downward jump at 16KB where MPI switches
  // from the eager to the rendezvous protocol.
  const auto np = network_params::quartz_like();
  const double before =
      np.remote.bandwidth(static_cast<double>(np.remote.eager_threshold) - 1);
  const double after =
      np.remote.bandwidth(static_cast<double>(np.remote.eager_threshold));
  EXPECT_LT(after, before);
}

TEST(LinkModel, BandwidthRecoversAboveTheSwitch) {
  const auto np = network_params::quartz_like();
  const double at_switch =
      np.remote.bandwidth(static_cast<double>(np.remote.eager_threshold));
  const double large = np.remote.bandwidth(64.0 * 1024 * 1024);
  EXPECT_GT(large, at_switch);
  // Approaches the rendezvous asymptote.
  EXPECT_GT(large, 0.9 * np.remote.rendezvous_bw_Bps);
  EXPECT_LE(large, np.remote.rendezvous_bw_Bps);
}

TEST(LinkModel, SmallMessagesAreLatencyBound) {
  const auto np = network_params::quartz_like();
  // An 8-byte message moves at a tiny fraction of peak.
  EXPECT_LT(np.remote.bandwidth(8), 0.01 * np.remote.rendezvous_bw_Bps);
}

TEST(LinkModel, LocalLinkBeatsRemoteLinkAtEverySize) {
  const auto np = network_params::quartz_like();
  for (double s : {8.0, 1024.0, 16384.0, 1e6, 1e8}) {
    EXPECT_LT(np.local.transfer_time(s), np.remote.transfer_time(s));
  }
}

TEST(LinkModel, TransferTimeIsMonotoneInSize) {
  const auto np = network_params::quartz_like();
  double prev = 0;
  for (double s = 1; s < 1e9; s *= 1.7) {
    const double t = np.remote.transfer_time(s);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

// ------------------------------------------------------------ evaluator

traffic_model uniform_traffic() {
  traffic_model tm;
  tm.p2p_bytes = 1 << 24;  // 16 MiB per core
  tm.p2p_msg_bytes = 16;
  return tm;
}

TEST(Evaluator, SingleRankCostsNothing) {
  const router r(scheme_kind::nlnr, topology(1, 1));
  const auto res = evaluate(r, network_params::quartz_like(), 1 << 18,
                            uniform_traffic());
  EXPECT_EQ(res.total_s, 0);
}

TEST(Evaluator, FlowConservationAcrossSchemes) {
  // Remote bytes per core must equal the remote fraction of traffic times
  // the number of remote hops per message (always exactly one).
  const topology t(8, 4);
  const traffic_model tm = uniform_traffic();
  const double remote_fraction =
      static_cast<double>(t.cores * (t.nodes - 1)) / (t.num_ranks() - 1);
  for (auto kind : ygm::routing::all_schemes) {
    const router r(kind, t);
    const auto res = evaluate(r, network_params::quartz_like(), 1 << 18, tm);
    EXPECT_NEAR(res.remote_bytes, tm.p2p_bytes * remote_fraction,
                1e-6 * tm.p2p_bytes)
        << ygm::routing::to_string(kind);
  }
}

TEST(Evaluator, LocalBytesReflectHopStructure) {
  const topology t(8, 4);
  const traffic_model tm = uniform_traffic();
  const auto np = network_params::quartz_like();
  const double local_pairs = t.cores - 1;           // same-node destinations
  const double total_pairs = t.num_ranks() - 1;
  const double remote_frac = (total_pairs - local_pairs) / total_pairs;
  const double local_frac = local_pairs / total_pairs;

  // NoRoute: local bytes only for same-node destinations.
  auto res = evaluate(router(scheme_kind::no_route, t), np, 1 << 18, tm);
  EXPECT_NEAR(res.local_bytes, tm.p2p_bytes * local_frac, 1);

  // NodeLocal: every message whose destination core offset differs makes one
  // local hop. NLNR adds a second local hop for most remote messages.
  auto nl = evaluate(router(scheme_kind::node_local, t), np, 1 << 18, tm);
  auto nr = evaluate(router(scheme_kind::node_remote, t), np, 1 << 18, tm);
  auto nlnr = evaluate(router(scheme_kind::nlnr, t), np, 1 << 18, tm);
  EXPECT_GT(nl.local_bytes, res.local_bytes);
  EXPECT_NEAR(nl.local_bytes, nr.local_bytes, 1e-6 * tm.p2p_bytes);
  EXPECT_GT(nlnr.local_bytes, nl.local_bytes);
  EXPECT_LT(nlnr.local_bytes, 2.0 * tm.p2p_bytes * remote_frac +
                                  tm.p2p_bytes * local_frac + 1);
}

TEST(Evaluator, PacketSizeOrderingFollowsPartnerCounts) {
  // Paper §III-E: average remote message size O(V/NC) for NoRoute, O(V/N)
  // for NL/NR, O(VC/N) for NLNR.
  const topology t(64, 8);
  const traffic_model tm = uniform_traffic();
  const auto np = network_params::quartz_like();
  const auto none = evaluate(router(scheme_kind::no_route, t), np, 1 << 18, tm);
  const auto nl = evaluate(router(scheme_kind::node_local, t), np, 1 << 18, tm);
  const auto nlnr = evaluate(router(scheme_kind::nlnr, t), np, 1 << 18, tm);
  EXPECT_LT(none.remote_packet_bytes, nl.remote_packet_bytes);
  EXPECT_LT(nl.remote_packet_bytes, nlnr.remote_packet_bytes);
  // Roughly a factor C between adjacent schemes.
  EXPECT_NEAR(nl.remote_packet_bytes / none.remote_packet_bytes, t.cores,
              0.5 * t.cores);
}

TEST(Evaluator, NoRouteCollapsesFirstAsNodesScale) {
  // Reproduce the headline ordering of Fig. 6: at large N, NoRoute is worst
  // and NLNR is best; at very small N the extra local pass makes NLNR lose
  // to NL/NR.
  const auto np = network_params::quartz_like();
  const traffic_model tm = uniform_traffic();
  const int cores = 16;

  const auto total = [&](scheme_kind k, int nodes) {
    return evaluate(router(k, topology(nodes, cores)), np, 1 << 18, tm)
        .total_s;
  };

  for (int nodes : {256, 1024}) {
    EXPECT_GT(total(scheme_kind::no_route, nodes),
              total(scheme_kind::node_local, nodes));
    EXPECT_GT(total(scheme_kind::node_local, nodes),
              total(scheme_kind::nlnr, nodes));
  }
  // Moderate scale: NL/NR beat NLNR (paper Fig. 6 discussion).
  EXPECT_LT(total(scheme_kind::node_remote, 8), total(scheme_kind::nlnr, 8));
}

TEST(Evaluator, BroadcastsFavorNodeRemoteOverNodeLocal) {
  // Paper §III-C: a broadcast costs C*(N-1) remote messages under NodeLocal
  // but only N-1 under NodeRemote/NLNR.
  const topology t(32, 8);
  const auto np = network_params::quartz_like();
  traffic_model tm;
  tm.bcast_count = 1000;
  tm.bcast_msg_bytes = 64;
  const auto nl = evaluate(router(scheme_kind::node_local, t), np, 1 << 18, tm);
  const auto nr =
      evaluate(router(scheme_kind::node_remote, t), np, 1 << 18, tm);
  EXPECT_NEAR(nl.remote_bytes / nr.remote_bytes, t.cores, 0.01 * t.cores);
  EXPECT_GT(nl.total_s, nr.total_s);
}

TEST(Evaluator, LargerMailboxImprovesOrKeepsThroughput) {
  // Fig. 8d observation: when packet sizes shrink below the efficient
  // region, growing the mailbox restores performance.
  const topology t(128, 16);
  const auto np = network_params::quartz_like();
  const traffic_model tm = uniform_traffic();
  const router r(scheme_kind::node_remote, t);
  const auto small = evaluate(r, np, 1 << 14, tm);
  const auto large = evaluate(r, np, 1 << 22, tm);
  EXPECT_LT(large.total_s, small.total_s);
  EXPECT_GT(large.remote_packet_bytes, small.remote_packet_bytes);
}

TEST(Evaluator, HandlesPureBcastAndPureP2pTraffic) {
  const topology t(8, 4);
  const auto np = network_params::quartz_like();
  traffic_model bc;
  bc.bcast_count = 10;
  bc.bcast_msg_bytes = 32;
  for (auto kind : ygm::routing::all_schemes) {
    const auto res = evaluate(router(kind, t), np, 1 << 18, bc);
    EXPECT_GT(res.total_s, 0) << ygm::routing::to_string(kind);
  }
  traffic_model empty;
  empty.p2p_bytes = 0;
  const auto res = evaluate(router(scheme_kind::nlnr, t), np, 1 << 18, empty);
  EXPECT_EQ(res.total_s, 0);
}

TEST(Evaluator, RejectsInvalidParameters) {
  const router r(scheme_kind::nlnr, topology(2, 2));
  EXPECT_THROW(evaluate(r, network_params::quartz_like(), 0, traffic_model{}),
               ygm::error);
  traffic_model tm;
  tm.p2p_msg_bytes = 0;
  EXPECT_THROW(evaluate(r, network_params::quartz_like(), 1024, tm),
               ygm::error);
}

}  // namespace
// (appended) second machine preset

TEST(LinkModel, BgqPresetHasItsOwnShape) {
  const auto bgq = ygm::net::network_params::bgq_like();
  const auto quartz = network_params::quartz_like();
  // Lower peak bandwidth, earlier protocol switch, still a dip.
  EXPECT_LT(bgq.remote.rendezvous_bw_Bps, quartz.remote.rendezvous_bw_Bps);
  EXPECT_LT(bgq.remote.eager_threshold, quartz.remote.eager_threshold);
  const double before = bgq.remote.bandwidth(
      static_cast<double>(bgq.remote.eager_threshold) - 1);
  const double after =
      bgq.remote.bandwidth(static_cast<double>(bgq.remote.eager_threshold));
  EXPECT_LT(after, before);
  // The scheme orderings must hold on this machine too.
  const topology t(256, 16);
  const traffic_model tm = [] {
    traffic_model m;
    m.p2p_bytes = 1 << 24;
    m.p2p_msg_bytes = 16;
    return m;
  }();
  const auto none = evaluate(router(scheme_kind::no_route, t), bgq, 1 << 18, tm);
  const auto nlnr = evaluate(router(scheme_kind::nlnr, t), bgq, 1 << 18, tm);
  EXPECT_GT(none.total_s, nlnr.total_s);
}
