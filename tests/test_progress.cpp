// Progress-engine tests (core/progress.hpp, docs/PROGRESS.md).
//
// Covers the redesigned progress-control API end to end: the ygm::launch
// entry point and its precedence rules, the mpsc_ring handoff primitive,
// engine steal/pause/resume semantics, exception propagation from
// engine-executed callbacks, teardown with traffic still in flight, the
// reentrancy/engine-race exchange claim, and a ledger-verified chaos sweep
// across {mailbox, hybrid} x {inproc, socket} x {engine, polling}.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/hybrid_mailbox.hpp"
#include "core/invariants.hpp"
#include "core/ygm.hpp"
#include "routing/router.hpp"
#include "telemetry/causal.hpp"
#include "telemetry/journey.hpp"
#include "telemetry/telemetry.hpp"

namespace {

namespace sim = ygm::mpisim;
using ygm::core::comm_world;
using ygm::core::hybrid_mailbox;
using ygm::core::mailbox;
using ygm::core::run_chaos_trial;
using ygm::core::trial_config;
using ygm::routing::scheme_kind;
using ygm::routing::topology;

struct ping {
  std::uint64_t value = 0;
  template <class Ar>
  void serialize(Ar& ar) {
    ar & value;
  }
};

/// RAII environment-variable override (tests run single-threaded at the
/// gtest level; rank threads only read the environment).
class scoped_env {
 public:
  scoped_env(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    ::setenv(name, value, 1);
  }
  ~scoped_env() {
    if (saved_.has_value()) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

bool wait_until(const std::function<bool()>& pred,
                std::chrono::milliseconds budget) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::yield();
  }
  return pred();
}

// ------------------------------------------------------------- mode parsing

TEST(ProgressMode, NamesRoundTrip) {
  using ygm::progress::mode;
  EXPECT_EQ(ygm::progress::mode_from_name("polling"), mode::polling);
  EXPECT_EQ(ygm::progress::mode_from_name("engine"), mode::engine);
  EXPECT_EQ(ygm::progress::mode_from_name("Engine"), std::nullopt);
  EXPECT_EQ(ygm::progress::mode_from_name(""), std::nullopt);
  EXPECT_EQ(ygm::progress::to_string(mode::polling), "polling");
  EXPECT_EQ(ygm::progress::to_string(mode::engine), "engine");
}

TEST(ProgressMode, EnvDefaultsToPollingAndRejectsTypos) {
  {
    scoped_env env("YGM_PROGRESS", "");
    EXPECT_EQ(ygm::progress::mode_from_env(), ygm::progress::mode::polling);
  }
  {
    scoped_env env("YGM_PROGRESS", "engine");
    EXPECT_EQ(ygm::progress::mode_from_env(), ygm::progress::mode::engine);
  }
  {
    // A typo must throw, not silently fall back to polling (that would
    // fake engine coverage in CI).
    scoped_env env("YGM_PROGRESS", "engien");
    EXPECT_THROW(ygm::progress::mode_from_env(), ygm::error);
  }
}

// --------------------------------------------------------------- mpsc_ring

TEST(MpscRing, CapacityRoundsUpToPowerOfTwo) {
  ygm::progress::mpsc_ring<int> r(3);
  EXPECT_EQ(r.capacity(), 4u);
  ygm::progress::mpsc_ring<int> r2(64);
  EXPECT_EQ(r2.capacity(), 64u);
}

TEST(MpscRing, FifoAndBackpressure) {
  ygm::progress::mpsc_ring<int> r(4);
  EXPECT_TRUE(r.empty());
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(r.try_push(int(i)));
  EXPECT_TRUE(r.full());
  int overflow = 99;
  EXPECT_FALSE(r.try_push(std::move(overflow)));  // full: backpressure
  for (int i = 0; i < 4; ++i) {
    const auto v = r.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);  // FIFO
  }
  EXPECT_FALSE(r.try_pop().has_value());
  EXPECT_TRUE(r.empty());
}

TEST(MpscRing, MultiProducerExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  ygm::progress::mpsc_ring<std::uint64_t> r(64);
  std::atomic<int> done{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&r, &done, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        std::uint64_t v = (std::uint64_t(p) << 32) | std::uint64_t(i);
        while (!r.try_push(std::move(v))) std::this_thread::yield();
      }
      done.fetch_add(1);
    });
  }
  // Single consumer: every pushed value arrives exactly once, in order per
  // producer.
  std::vector<std::uint64_t> next(kProducers, 0);
  std::uint64_t popped = 0;
  while (popped < std::uint64_t(kProducers) * kPerProducer) {
    if (auto v = r.try_pop()) {
      const auto p = *v >> 32;
      const auto i = *v & 0xffffffffu;
      ASSERT_LT(p, std::uint64_t(kProducers));
      EXPECT_EQ(i, next[static_cast<std::size_t>(p)]);
      ++next[static_cast<std::size_t>(p)];
      ++popped;
    } else {
      std::this_thread::yield();
    }
  }
  for (auto& t : producers) t.join();
  EXPECT_TRUE(r.empty());
}

// ------------------------------------------------- launch + precedence

TEST(Launch, FieldBeatsEnvBeatsDefault) {
  // Env says engine, field says polling: the field must win.
  scoped_env env("YGM_PROGRESS", "engine");
  ygm::run_options o;
  o.nranks = 2;
  o.progress_mode = ygm::progress::mode::polling;
  ygm::launch(o, [](sim::comm&) {
    EXPECT_EQ(ygm::progress::current(), nullptr);
  });

  // No field: the env decides.
  ygm::run_options o2;
  o2.nranks = 2;
  ygm::launch(o2, [](sim::comm&) {
    EXPECT_NE(ygm::progress::current(), nullptr);
  });
}

TEST(Launch, DefaultIsPolling) {
  scoped_env env("YGM_PROGRESS", "");
  ygm::run_options o;
  o.nranks = 2;
  ygm::launch(o, [](sim::comm&) {
    EXPECT_EQ(ygm::progress::current(), nullptr);
  });
}

TEST(Launch, CollectRoundTrips) {
  ygm::run_options o;
  o.nranks = 3;
  o.progress_mode = ygm::progress::mode::engine;
  const auto blobs = ygm::launch_collect(o, [](sim::comm& c) {
    std::vector<std::byte> b;
    ygm::ser::append_bytes(std::uint64_t(c.rank() * 10), b);
    return b;
  });
  ASSERT_EQ(blobs.size(), 3u);
  for (int r = 0; r < 3; ++r) {
    const auto v = ygm::ser::from_bytes<std::uint64_t>(
        {blobs[static_cast<std::size_t>(r)].data(),
         blobs[static_cast<std::size_t>(r)].size()});
    EXPECT_EQ(v, std::uint64_t(r) * 10);
  }
}

// The deprecated mpisim::run overloads must keep working unchanged (the
// whole existing suite exercises them; this pins the equivalence with the
// new entry point in one place).
TEST(Launch, DeprecatedRunWrapperStillWorks) {
  std::atomic<int> calls{0};
  sim::run(2, [&](sim::comm& c) {
    EXPECT_EQ(ygm::progress::current(), nullptr);  // run() never starts one
    calls.fetch_add(1 + c.rank() * 0);
  });
  EXPECT_EQ(calls.load(), 2);
}

// ------------------------------------------------------ engine mechanics

TEST(ProgressEngine, StartStopMidRunAndCounters) {
  ygm::run_options o;
  o.nranks = 2;
  o.progress_mode = ygm::progress::mode::engine;
  ygm::launch(o, [](sim::comm& c) {
    auto* eng = ygm::progress::current();
    ASSERT_NE(eng, nullptr);
    c.barrier();
    if (c.rank() == 0) {
      // The loop must be alive: passes keep increasing.
      const auto before = eng->stats().passes;
      EXPECT_TRUE(wait_until(
          [&] { return eng->stats().passes > before; },
          std::chrono::seconds(5)));
      // Mid-run stop/start: pause is observable and reversible.
      eng->pause();
      EXPECT_TRUE(eng->paused());
      eng->resume();
      EXPECT_FALSE(eng->paused());
    }
    c.barrier();
  });
}

TEST(ProgressEngine, StealsDeliveriesWhileRankComputes) {
  static constexpr int kMsgs = 64;
  ygm::run_options o;
  o.nranks = 2;
  o.progress_mode = ygm::progress::mode::engine;
  ygm::launch(o, [](sim::comm& c) {
    topology topo(1, 2);
    comm_world world(c, topo, scheme_kind::no_route);
    std::atomic<int> got{0};
    mailbox<ping> mb(world, [&](const ping&) { got.fetch_add(1); });
    c.barrier();
    if (c.rank() == 0) {
      for (int i = 0; i < kMsgs; ++i) mb.send(1, ping{std::uint64_t(i)});
      mb.flush();
    } else {
      // Compute region: never poll — only the engine can move these
      // messages, executing the callbacks directly (deliver::on_engine).
      ygm::progress::guard g(world, ygm::progress::deliver::on_engine);
      EXPECT_TRUE(wait_until([&] { return got.load() >= kMsgs; },
                             std::chrono::seconds(10)))
          << "engine stole " << got.load() << "/" << kMsgs
          << " deliveries while the rank computed";
    }
    mb.wait_empty();
    if (c.rank() == 1) {
      EXPECT_EQ(got.load(), kMsgs);
    }
  });
}

TEST(ProgressEngine, DeferredDeliveriesRunOnRankThreadAtDrain) {
  static constexpr int kMsgs = 32;
  ygm::run_options o;
  o.nranks = 2;
  o.progress_mode = ygm::progress::mode::engine;
  ygm::launch(o, [](sim::comm& c) {
    topology topo(1, 2);
    comm_world world(c, topo, scheme_kind::no_route);
    const auto rank_tid = std::this_thread::get_id();
    std::atomic<int> got{0};
    std::atomic<bool> off_thread{false};
    mailbox<ping> mb(world, [&](const ping&) {
      if (std::this_thread::get_id() != rank_tid) off_thread.store(true);
      got.fetch_add(1);
    });
    c.barrier();
    if (c.rank() == 0) {
      for (int i = 0; i < kMsgs; ++i) mb.send(1, ping{1});
      mb.flush();
    } else {
      // Default (deferred) guard: the engine may drain the transport but
      // the callbacks only run on this thread, at drain()/wait_empty().
      ygm::progress::guard g(world, ygm::progress::deliver::deferred);
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      ygm::progress::drain(world);
    }
    mb.wait_empty();
    if (c.rank() == 1) {
      EXPECT_EQ(got.load(), kMsgs);
      EXPECT_FALSE(off_thread.load())
          << "a deferred-mode callback ran off the rank thread";
    }
  });
}

TEST(ProgressEngine, EngineExecutedCallbackExceptionSurfacesOnRank) {
  ygm::run_options o;
  o.nranks = 2;
  o.progress_mode = ygm::progress::mode::engine;
  try {
    ygm::launch(o, [](sim::comm& c) {
      topology topo(1, 2);
      comm_world world(c, topo, scheme_kind::no_route);
      std::atomic<bool> thrown{false};
      mailbox<ping> mb(world, [&](const ping&) {
        thrown.store(true);
        throw std::runtime_error("engine callback boom");
      });
      c.barrier();
      if (c.rank() == 1) {
        mb.send(0, ping{7});
        mb.flush();
        mb.wait_empty();
      } else {
        {
          ygm::progress::guard g(world, ygm::progress::deliver::on_engine);
          wait_until([&] { return thrown.load(); }, std::chrono::seconds(10));
        }
        // The engine parked the exception; the rank's next progress call
        // rethrows it here (or, if the engine lost the race, the rank
        // executes the callback itself — same observable failure).
        mb.wait_empty();
      }
    });
    FAIL() << "the callback exception never surfaced";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos)
        << "unexpected failure: " << e.what();
  }
}

TEST(ProgressEngine, TeardownWithTrafficInFlight) {
  // Destroy mailboxes with messages still undelivered while the engine is
  // live: remove_pump must wait out any steal in flight, never crash or
  // hang, and the world must stay usable for a fresh mailbox afterwards.
  ygm::run_options o;
  o.nranks = 4;
  o.progress_mode = ygm::progress::mode::engine;
  ygm::launch(o, [](sim::comm& c) {
    topology topo(2, 2);
    comm_world world(c, topo, scheme_kind::nlnr);
    {
      mailbox<ping> mb(world, [](const ping&) {});
      ygm::progress::guard g(world);
      for (int i = 0; i < 128; ++i) {
        mb.send((c.rank() + 1 + i) % c.size(), ping{std::uint64_t(i)});
      }
      mb.flush();
      // No wait_empty: the mailbox dies with traffic in flight.
    }
    c.barrier();
    // The world (and engine) survive: a fresh mailbox on a fresh tag block
    // still completes a verified round trip.
    std::atomic<int> got{0};
    mailbox<ping> mb2(world, [&](const ping&) { got.fetch_add(1); });
    mb2.send((c.rank() + 1) % c.size(), ping{1});
    mb2.wait_empty();
    EXPECT_EQ(got.load(), 1);
  });
}

// Revert guard: defer_delivery used to record a hop_kind::handoff event
// for the MPSC-ring push, and journey::legs() counts handoff as a network
// leg (it marks the hybrid mailbox's shared-memory transfer). Every
// engine-delivered sampled journey then reported one more leg than the
// route has hops and `ygm_trace --selfcheck` failed. The ring handoff is
// rank-internal — legs must match the wire path exactly, engine or not.
TEST(ProgressEngine, DeferredHandoffAddsNoCausalLeg) {
  namespace tel = ygm::telemetry;
  namespace causal = ygm::telemetry::causal;
  tel::session session;
  tel::set_global(&session);
  ygm::run_options o;
  o.nranks = 4;
  o.progress_mode = ygm::progress::mode::engine;
  o.trace_sample = 1.0;
  static constexpr int kMsgs = 20;
  const topology topo(2, 2);
  ygm::launch(o, [&](sim::comm& c) {
    comm_world world(c, topo, scheme_kind::nlnr);
    std::atomic<int> recv{0};
    mailbox<std::uint32_t> mb(
        world, [&](const std::uint32_t&) { recv.fetch_add(1); }, 512);
    {
      // Compute window: the engine steals arrivals and defers them through
      // the ring, which is exactly the path that minted the phantom leg.
      ygm::progress::guard g(world);
      for (int i = 0; i < kMsgs; ++i) {
        for (int d = 0; d < c.size(); ++d) {
          if (d != c.rank()) mb.send(d, static_cast<std::uint32_t>(i));
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    mb.wait_empty();
    EXPECT_EQ(recv.load(), kMsgs * (c.size() - 1));
  });
  tel::set_global(nullptr);

  const auto journeys = causal::stitch(causal::extract_hops(session));
  EXPECT_EQ(journeys.size(), static_cast<std::size_t>(4 * 3 * kMsgs));
  const ygm::routing::router route(scheme_kind::nlnr, topo);
  const auto errors = causal::check_journeys(
      journeys, [&](int /*world*/, int origin, int dest) {
        if (origin < 0 || dest < 0) return -1;
        return static_cast<int>(route.path(origin, dest).size());
      });
  for (const auto& e : errors) ADD_FAILURE() << e;
  for (const auto& [key, j] : journeys) {
    EXPECT_TRUE(j.complete());
    EXPECT_LE(j.legs(), static_cast<std::size_t>(route.max_hops()));
  }
}

// ------------------------------------------- exchange-claim regression
//
// Revert guard for the reentrancy bugfix: in_exchange_ used to be a plain
// bool set/cleared around the drain loop. Two bugs followed: (a) a receive
// callback that threw left the flag stuck true, permanently wedging
// poll_incoming into a no-op (this test then hangs in wait_empty until the
// stall watchdog kills it); (b) with an engine attached, rank and engine
// could both read false and drain concurrently. exchange_claim (atomic
// exchange + RAII release) fixes both; poll()'s lock-free early-out is why
// the flag must stay a std::atomic.
TEST(ExchangeClaim, ThrowingCallbackDoesNotWedgeTheMailbox) {
  sim::run(2, [](sim::comm& c) {
    topology topo(1, 2);
    comm_world world(c, topo, scheme_kind::no_route);
    std::atomic<int> got{0};
    const bool receiver = c.rank() == 1;
    mailbox<ping> mb(world, [&](const ping& p) {
      got.fetch_add(1);
      if (p.value == 0xdead) throw std::runtime_error("poison");
    });
    if (c.rank() == 0) {
      mb.send(1, ping{0xdead});
      mb.flush();  // first packet: the poison alone
      mb.send(1, ping{1});
      mb.flush();  // second packet: must still be deliverable after the throw
    }
    if (receiver) {
      bool threw = false;
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(10);
      while (!threw && std::chrono::steady_clock::now() < deadline) {
        try {
          mb.poll();
        } catch (const std::runtime_error&) {
          threw = true;
        }
        std::this_thread::yield();
      }
      EXPECT_TRUE(threw) << "poison message never delivered";
    }
    // With the claim released by RAII, progress resumes: the second
    // message arrives and global quiescence is reached. (With the reverted
    // plain-bool flag, rank 1 never drains again and this hangs.)
    mb.wait_empty();
    if (receiver) {
      EXPECT_EQ(got.load(), 2);
    }
  });
}

// ----------------------------------------------------- ledger chaos sweep
//
// The acceptance sweep: seeded chaos traffic, every delivery invariant
// (exactly-once, no phantoms, conservation, sealed silence, counter
// cross-checks) verified by the ledger, across mailbox kind x backend x
// progress mode. Engine trials wrap injection in a progress::guard so the
// engine genuinely competes with the rank for the same packets.

struct progress_cell {
  bool hybrid = false;
  ygm::transport::backend_kind backend = ygm::transport::backend_kind::inproc;
  bool engine = false;
};

std::string progress_cell_name(
    const ::testing::TestParamInfo<progress_cell>& info) {
  const auto& p = info.param;
  return std::string(p.hybrid ? "hybrid" : "mailbox") + "_" +
         std::string(ygm::transport::to_string(p.backend)) + "_" +
         (p.engine ? "engine" : "polling");
}

std::vector<progress_cell> progress_cells() {
  std::vector<progress_cell> cells;
  for (bool hybrid : {false, true}) {
    for (auto backend : {ygm::transport::backend_kind::inproc,
                         ygm::transport::backend_kind::socket}) {
      for (bool engine : {false, true}) {
        cells.push_back({hybrid, backend, engine});
      }
    }
  }
  return cells;
}

trial_config make_progress_trial(std::uint64_t seed, bool engine) {
  static constexpr std::pair<int, int> kTopos[] = {
      {2, 2}, {1, 4}, {3, 2}, {2, 3}};
  static constexpr std::size_t kCapacities[] = {1, 24, 96, 65536};
  trial_config t;
  t.seed = seed;
  t.scheme = ygm::routing::all_schemes[seed %
                                       std::size(ygm::routing::all_schemes)];
  const auto [n, c] = kTopos[seed % 4];
  t.nodes = n;
  t.cores = c;
  t.capacity = kCapacities[(seed / 2) % 4];
  t.timed = false;  // engine mode requires untimed worlds
  t.serialize_self_sends = (seed % 4) == 2;
  t.msgs_per_rank = 24;
  t.bcasts_per_rank = 2;
  t.epochs = 2;
  t.use_progress_guard = engine;
  t.chaos = (seed % 2) == 0 ? sim::chaos_config::light(seed)
                            : sim::chaos_config::heavy(seed);
  return t;
}

class ProgressChaosSweep : public ::testing::TestWithParam<progress_cell> {};

TEST_P(ProgressChaosSweep, LedgerVerifiedExactlyOnce) {
  const auto cell = GetParam();
  // Socket trials fork whole processes per rank; a smaller seed block
  // keeps the shard's wall time proportionate without losing the matrix.
  const std::uint64_t seeds =
      cell.backend == ygm::transport::backend_kind::socket ? 4 : 16;
  for (std::uint64_t seed = 0; seed < seeds; ++seed) {
    const trial_config t = make_progress_trial(seed, cell.engine);
    ygm::run_options o;
    o.nranks = t.num_ranks();
    o.backend = cell.backend;
    o.chaos = t.chaos;
    o.progress_mode = cell.engine ? ygm::progress::mode::engine
                                  : ygm::progress::mode::polling;
    std::vector<std::string> all;
    const auto blobs = ygm::launch_collect(o, [&](sim::comm& c) {
      const auto local = cell.hybrid
                             ? run_chaos_trial<hybrid_mailbox>(c, t)
                             : run_chaos_trial<mailbox>(c, t);
      std::vector<std::byte> out;
      ygm::ser::append_bytes(local, out);
      return out;
    });
    for (const auto& blob : blobs) {
      const auto local = ygm::ser::from_bytes<std::vector<std::string>>(
          {blob.data(), blob.size()});
      all.insert(all.end(), local.begin(), local.end());
    }
    if (!all.empty()) {
      std::string joined;
      for (const auto& v : all) joined += "\n  " + v;
      FAIL() << "invariant violations for trial {" << t.describe()
             << "} backend=" << ygm::transport::to_string(cell.backend)
             << " engine=" << int(cell.engine) << joined;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Matrix, ProgressChaosSweep,
                         ::testing::ValuesIn(progress_cells()),
                         progress_cell_name);

}  // namespace
