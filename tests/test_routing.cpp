// Tests for the routing schemes (routing/): route correctness, the paper's
// exchange-phase structure, channel/partner formulas, and broadcast trees.
#include <gtest/gtest.h>

#include <map>
#include <queue>
#include <set>
#include <tuple>
#include <vector>

#include "routing/router.hpp"

namespace {

using ygm::routing::router;
using ygm::routing::scheme_kind;
using ygm::routing::topology;

// ------------------------------------------------------------- topology

TEST(Topology, RankAddressingRoundTrips) {
  const topology t(5, 4);
  EXPECT_EQ(t.num_ranks(), 20);
  for (int r = 0; r < t.num_ranks(); ++r) {
    EXPECT_EQ(t.rank_of(t.node_of(r), t.core_of(r)), r);
    EXPECT_GE(t.core_of(r), 0);
    EXPECT_LT(t.core_of(r), t.cores);
  }
}

TEST(Topology, LocalityClassification) {
  const topology t(3, 4);
  EXPECT_TRUE(t.same_node(0, 3));
  EXPECT_FALSE(t.same_node(3, 4));
  EXPECT_TRUE(t.is_remote(0, 11));
  EXPECT_FALSE(t.is_remote(4, 7));
}

TEST(Topology, LayerStructureFollowsPaper) {
  // Layer offset l = n mod C; layers group C consecutive node offsets.
  const topology t(8, 4);
  EXPECT_EQ(t.layer_offset(0), 0);
  EXPECT_EQ(t.layer_offset(5), 1);
  EXPECT_EQ(t.layer_of(3), 0);
  EXPECT_EQ(t.layer_of(4), 1);
}

TEST(Topology, SchemeNames) {
  EXPECT_EQ(ygm::routing::to_string(scheme_kind::no_route), "NoRoute");
  EXPECT_EQ(ygm::routing::to_string(scheme_kind::node_local), "NodeLocal");
  EXPECT_EQ(ygm::routing::to_string(scheme_kind::node_remote), "NodeRemote");
  EXPECT_EQ(ygm::routing::to_string(scheme_kind::nlnr), "NLNR");
}

// ----------------------------------------------------- route correctness

struct route_case {
  scheme_kind kind;
  int nodes;
  int cores;
};

std::vector<route_case> route_cases() {
  std::vector<route_case> cases;
  for (auto kind : ygm::routing::all_schemes) {
    for (auto [n, c] : {std::pair{1, 1}, {1, 4}, {2, 1}, {2, 2}, {2, 3},
                        {3, 3}, {4, 4}, {5, 3}, {6, 4}, {8, 4}, {9, 2},
                        {12, 4}, {7, 5}}) {
      cases.push_back({kind, n, c});
    }
  }
  return cases;
}

class RoutingAllPairs : public ::testing::TestWithParam<route_case> {};

TEST_P(RoutingAllPairs, EveryRouteTerminatesAtDestinationWithinHopBound) {
  const auto& pc = GetParam();
  const topology t(pc.nodes, pc.cores);
  const router r(pc.kind, t);
  for (int s = 0; s < t.num_ranks(); ++s) {
    for (int d = 0; d < t.num_ranks(); ++d) {
      if (s == d) continue;
      int here = s;
      int hops = 0;
      while (here != d) {
        const int nh = r.next_hop(here, d);
        ASSERT_NE(nh, here) << "route stalled";
        ASSERT_GE(nh, 0);
        ASSERT_LT(nh, t.num_ranks());
        here = nh;
        ++hops;
        ASSERT_LE(hops, r.max_hops())
            << ygm::routing::to_string(pc.kind) << " s=" << s << " d=" << d;
      }
    }
  }
}

TEST_P(RoutingAllPairs, RemoteHopsNeverExceedOne) {
  // Every scheme crosses the wire exactly once per message (the whole point
  // of the local/remote phase split).
  const auto& pc = GetParam();
  const topology t(pc.nodes, pc.cores);
  const router r(pc.kind, t);
  for (int s = 0; s < t.num_ranks(); ++s) {
    for (int d = 0; d < t.num_ranks(); ++d) {
      if (s == d) continue;
      int here = s;
      int remote_hops = 0;
      while (here != d) {
        const int nh = r.next_hop(here, d);
        if (t.is_remote(here, nh)) ++remote_hops;
        here = nh;
      }
      ASSERT_EQ(remote_hops, t.same_node(s, d) ? 0 : 1);
    }
  }
}

TEST_P(RoutingAllPairs, SameNodeTrafficStaysLocal) {
  const auto& pc = GetParam();
  const topology t(pc.nodes, pc.cores);
  const router r(pc.kind, t);
  for (int s = 0; s < t.num_ranks(); ++s) {
    for (int d = 0; d < t.num_ranks(); ++d) {
      if (s == d || !t.same_node(s, d)) continue;
      // One local hop, straight to the destination.
      EXPECT_EQ(r.next_hop(s, d), d);
    }
  }
}

TEST_P(RoutingAllPairs, BroadcastTreeCoversEveryRankExactlyOnce) {
  const auto& pc = GetParam();
  const topology t(pc.nodes, pc.cores);
  const router r(pc.kind, t);
  for (int origin = 0; origin < t.num_ranks(); ++origin) {
    std::vector<int> copies(static_cast<std::size_t>(t.num_ranks()), 0);
    long long remote_msgs = 0;
    std::queue<int> frontier;
    frontier.push(origin);
    while (!frontier.empty()) {
      const int here = frontier.front();
      frontier.pop();
      for (int nh : r.bcast_next_hops(here, origin)) {
        ASSERT_NE(nh, origin) << "broadcast looped back to its origin";
        if (t.is_remote(here, nh)) ++remote_msgs;
        ++copies[static_cast<std::size_t>(nh)];
        frontier.push(nh);
      }
    }
    for (int rank = 0; rank < t.num_ranks(); ++rank) {
      ASSERT_EQ(copies[static_cast<std::size_t>(rank)],
                rank == origin ? 0 : 1)
          << ygm::routing::to_string(pc.kind) << " origin=" << origin
          << " rank=" << rank;
    }
    ASSERT_EQ(remote_msgs, r.bcast_remote_messages());
  }
}

TEST_P(RoutingAllPairs, RemotePartnerCountMatchesEnumeration) {
  const auto& pc = GetParam();
  const topology t(pc.nodes, pc.cores);
  const router r(pc.kind, t);
  // Enumerate actual wire edges used by uniform all-pairs traffic.
  std::map<int, std::set<int>> wire_out;
  for (int s = 0; s < t.num_ranks(); ++s) {
    for (int d = 0; d < t.num_ranks(); ++d) {
      if (s == d) continue;
      int here = s;
      while (here != d) {
        const int nh = r.next_hop(here, d);
        if (t.is_remote(here, nh)) wire_out[here].insert(nh);
        here = nh;
      }
    }
  }
  for (int rank = 0; rank < t.num_ranks(); ++rank) {
    const int expect = r.remote_out_partners(rank);
    const int actual = wire_out.count(rank)
                           ? static_cast<int>(wire_out[rank].size())
                           : 0;
    ASSERT_EQ(actual, expect)
        << ygm::routing::to_string(pc.kind) << " rank=" << rank;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Machines, RoutingAllPairs, ::testing::ValuesIn(route_cases()),
    [](const ::testing::TestParamInfo<route_case>& info) {
      return std::string(ygm::routing::to_string(info.param.kind)) + "_N" +
             std::to_string(info.param.nodes) + "_C" +
             std::to_string(info.param.cores);
    });

// ------------------------------------------------- scheme-specific shapes

TEST(NodeLocal, RoutesLocalFirstThenRemote) {
  const topology t(4, 4);
  const router r(scheme_kind::node_local, t);
  // (0,1) -> (2,3): first hop local to core 3, then remote to node 2.
  const int s = t.rank_of(0, 1);
  const int d = t.rank_of(2, 3);
  const int h1 = r.next_hop(s, d);
  EXPECT_EQ(h1, t.rank_of(0, 3));
  EXPECT_EQ(r.next_hop(h1, d), d);
}

TEST(NodeRemote, RoutesRemoteFirstThenLocal) {
  const topology t(4, 4);
  const router r(scheme_kind::node_remote, t);
  // (0,1) -> (2,3): first hop remote to (2,1), then local delivery.
  const int s = t.rank_of(0, 1);
  const int d = t.rank_of(2, 3);
  const int h1 = r.next_hop(s, d);
  EXPECT_EQ(h1, t.rank_of(2, 1));
  EXPECT_EQ(r.next_hop(h1, d), d);
}

TEST(Nlnr, RoutesThroughBothGateways) {
  const topology t(8, 4);
  const router r(scheme_kind::nlnr, t);
  // (1,2) -> (7,0): local to (1, 7 mod 4 = 3), remote to (7, 1 mod 4 = 1),
  // local to (7,0).
  const int s = t.rank_of(1, 2);
  const int d = t.rank_of(7, 0);
  const int h1 = r.next_hop(s, d);
  EXPECT_EQ(h1, t.rank_of(1, 3));
  const int h2 = r.next_hop(h1, d);
  EXPECT_EQ(h2, t.rank_of(7, 1));
  EXPECT_EQ(r.next_hop(h2, d), d);
}

TEST(Nlnr, GatewayOriginSkipsFirstLocalExchange) {
  const topology t(8, 4);
  const router r(scheme_kind::nlnr, t);
  // Source core already matches the destination node's layer offset:
  // (1,3) -> (7,0) goes remote immediately.
  const int s = t.rank_of(1, 3);
  const int d = t.rank_of(7, 0);
  EXPECT_EQ(r.next_hop(s, d), t.rank_of(7, 1));
}

TEST(Nlnr, SelfOffsetCoresTalkToMatchingLayerOffsets) {
  // Cores (n, c) with c = n mod C communicate remotely only with nodes whose
  // layer offset matches their own core offset (paper §III-D).
  const topology t(8, 4);
  const router r(scheme_kind::nlnr, t);
  for (int n = 0; n < t.nodes; ++n) {
    const int c = t.layer_offset(n);
    const int rank = t.rank_of(n, c);
    for (int d = 0; d < t.num_ranks(); ++d) {
      if (d == rank) continue;
      const int nh = r.next_hop(rank, d);
      if (t.is_remote(rank, nh)) {
        EXPECT_EQ(t.layer_offset(t.node_of(nh)), c);
      }
    }
  }
}

// --------------------------------------------------- paper §III formulas

TEST(Formulas, RemoteChannelCounts) {
  const topology t(32, 8);
  EXPECT_EQ(router(scheme_kind::node_local, t).remote_channel_count(), 8);
  EXPECT_EQ(router(scheme_kind::node_remote, t).remote_channel_count(), 8);
  // C(C-1)/2 + C = 28 + 8.
  EXPECT_EQ(router(scheme_kind::nlnr, t).remote_channel_count(), 36);
}

TEST(Formulas, BcastRemoteMessageCounts) {
  // Paper §III-C/D: node_local consumes C*(N-1) remote messages per
  // broadcast; node_remote and NLNR consume N-1.
  const topology t(16, 4);
  EXPECT_EQ(router(scheme_kind::node_local, t).bcast_remote_messages(),
            4 * 15);
  EXPECT_EQ(router(scheme_kind::no_route, t).bcast_remote_messages(), 4 * 15);
  EXPECT_EQ(router(scheme_kind::node_remote, t).bcast_remote_messages(), 15);
  EXPECT_EQ(router(scheme_kind::nlnr, t).bcast_remote_messages(), 15);
}

TEST(Formulas, RemotePartnerScaling) {
  // Paper §III-E: (N-1)C partners with no routing, N-1 for NL/NR, ~N/C for
  // NLNR.
  const topology t(64, 8);
  EXPECT_EQ(router(scheme_kind::no_route, t).remote_out_partners(0), 63 * 8);
  EXPECT_EQ(router(scheme_kind::node_local, t).remote_out_partners(0), 63);
  EXPECT_EQ(router(scheme_kind::node_remote, t).remote_out_partners(0), 63);
  // Core 0 of node 0 gates nodes {8,16,...,56}: N/C - 1 partners (node 0 is
  // itself in that class).
  EXPECT_EQ(router(scheme_kind::nlnr, t).remote_out_partners(0), 7);
  // A core whose offset is not its node's layer offset gates N/C nodes.
  EXPECT_EQ(router(scheme_kind::nlnr, t).remote_out_partners(1), 8);
}

TEST(Formulas, MaxHops) {
  const topology t(4, 2);
  EXPECT_EQ(router(scheme_kind::no_route, t).max_hops(), 1);
  EXPECT_EQ(router(scheme_kind::node_local, t).max_hops(), 2);
  EXPECT_EQ(router(scheme_kind::node_remote, t).max_hops(), 2);
  EXPECT_EQ(router(scheme_kind::nlnr, t).max_hops(), 3);
}

TEST(Formulas, SingleCorePerNodeDegeneratesGracefully) {
  // With C = 1 every scheme reduces to direct node-to-node sends.
  const topology t(6, 1);
  for (auto kind : ygm::routing::all_schemes) {
    const router r(kind, t);
    for (int s = 0; s < t.num_ranks(); ++s) {
      for (int d = 0; d < t.num_ranks(); ++d) {
        if (s != d) {
          EXPECT_EQ(r.next_hop(s, d), d);
        }
      }
    }
  }
}

}  // namespace
// (appended) path() helper

TEST(Router, PathHelperMatchesIterativeNextHop) {
  const topology t(6, 4);
  for (auto kind : ygm::routing::all_schemes) {
    const router r(kind, t);
    for (int s = 0; s < t.num_ranks(); ++s) {
      for (int d = 0; d < t.num_ranks(); ++d) {
        if (s == d) continue;
        const auto hops = r.path(s, d);
        ASSERT_FALSE(hops.empty());
        ASSERT_EQ(hops.back(), d);
        ASSERT_LE(static_cast<int>(hops.size()), r.max_hops());
        int here = s;
        for (const int h : hops) {
          ASSERT_EQ(h, r.next_hop(here, d));
          here = h;
        }
      }
    }
  }
}
