// Unit and property tests for the serialization substrate (ser/).
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <variant>
#include <vector>

#include "common/rng.hpp"
#include "ser/serialize.hpp"

namespace {

using ygm::ser::from_bytes;
using ygm::ser::to_bytes;

template <class T>
void expect_roundtrip(const T& v) {
  const auto bytes = to_bytes(v);
  const T back = from_bytes<T>(bytes);
  EXPECT_EQ(back, v);
}

// ------------------------------------------------------------- varint

TEST(Varint, EncodesSmallValuesInOneByte) {
  for (std::uint64_t v : {0ULL, 1ULL, 42ULL, 127ULL}) {
    std::vector<std::byte> out;
    EXPECT_EQ(ygm::ser::varint_encode(v, out), 1u);
    EXPECT_EQ(ygm::ser::varint_size(v), 1u);
  }
}

TEST(Varint, RoundTripsBoundaryValues) {
  const std::uint64_t cases[] = {0,
                                 127,
                                 128,
                                 16383,
                                 16384,
                                 (1ULL << 32) - 1,
                                 1ULL << 32,
                                 ~0ULL};
  for (std::uint64_t v : cases) {
    std::vector<std::byte> out;
    ygm::ser::varint_encode(v, out);
    EXPECT_EQ(out.size(), ygm::ser::varint_size(v));
    const std::byte* p = out.data();
    EXPECT_EQ(ygm::ser::varint_decode(p, out.data() + out.size()), v);
    EXPECT_EQ(p, out.data() + out.size());
  }
}

TEST(Varint, RoundTripsRandomValues) {
  ygm::xoshiro256 rng(7);
  for (int i = 0; i < 2000; ++i) {
    // Bias toward small magnitudes, where the encoding boundaries live.
    const int shift = static_cast<int>(rng.below(64));
    const std::uint64_t v = rng() >> shift;
    std::vector<std::byte> out;
    ygm::ser::varint_encode(v, out);
    const std::byte* p = out.data();
    ASSERT_EQ(ygm::ser::varint_decode(p, out.data() + out.size()), v);
  }
}

TEST(Varint, ThrowsOnTruncation) {
  std::vector<std::byte> out;
  ygm::ser::varint_encode(1ULL << 40, out);
  for (std::size_t cut = 0; cut + 1 < out.size(); ++cut) {
    const std::byte* p = out.data();
    EXPECT_THROW(ygm::ser::varint_decode(p, out.data() + cut), ygm::error);
  }
}

TEST(Varint, ZigZagIsAnInvolutionOnRandomInputs) {
  ygm::xoshiro256 rng(13);
  for (int i = 0; i < 1000; ++i) {
    const auto v = static_cast<std::int64_t>(rng());
    EXPECT_EQ(ygm::ser::zigzag_decode(ygm::ser::zigzag_encode(v)), v);
  }
  EXPECT_EQ(ygm::ser::zigzag_encode(0), 0u);
  EXPECT_EQ(ygm::ser::zigzag_encode(-1), 1u);
  EXPECT_EQ(ygm::ser::zigzag_encode(1), 2u);
}

// ------------------------------------------------------------- scalars

TEST(Archive, RoundTripsArithmeticTypes) {
  expect_roundtrip<std::int8_t>(-5);
  expect_roundtrip<std::uint8_t>(250);
  expect_roundtrip<std::int16_t>(-31000);
  expect_roundtrip<std::uint32_t>(4000000000u);
  expect_roundtrip<std::int64_t>(-(1LL << 60));
  expect_roundtrip<float>(3.25f);
  expect_roundtrip<double>(-2.5e300);
  expect_roundtrip<bool>(true);
  expect_roundtrip<bool>(false);
  expect_roundtrip<char>('x');
}

enum class color : std::uint8_t { red = 1, green = 2, blue = 3 };

TEST(Archive, RoundTripsEnums) {
  const auto bytes = to_bytes(color::green);
  EXPECT_EQ(bytes.size(), 1u);
  EXPECT_EQ(from_bytes<color>(bytes), color::green);
}

TEST(Archive, ChainsWithAmpersand) {
  std::vector<std::byte> buf;
  ygm::ser::oarchive oar(buf);
  oar & 1 & 2.5 & std::string("hi");
  ygm::ser::iarchive iar({buf.data(), buf.size()});
  int a = 0;
  double b = 0;
  std::string c;
  iar & a & b & c;
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2.5);
  EXPECT_EQ(c, "hi");
  EXPECT_TRUE(iar.exhausted());
}

// ----------------------------------------------------------- containers

TEST(Archive, RoundTripsStrings) {
  expect_roundtrip(std::string{});
  expect_roundtrip(std::string("hello world"));
  expect_roundtrip(std::string(10000, 'q'));
  std::string with_nul = "a";
  with_nul.push_back('\0');
  with_nul += "b";
  expect_roundtrip(with_nul);
}

TEST(Archive, RoundTripsVectors) {
  expect_roundtrip(std::vector<int>{});
  expect_roundtrip(std::vector<int>{1, -2, 3});
  expect_roundtrip(std::vector<double>{0.5, -1.5});
  expect_roundtrip(std::vector<std::string>{"a", "", "ccc"});
  expect_roundtrip(std::vector<std::vector<int>>{{1}, {}, {2, 3}});
}

TEST(Archive, TrivialVectorUsesRawFastPath) {
  const std::vector<std::uint32_t> v{1, 2, 3, 4};
  const auto bytes = to_bytes(v);
  // 1 varint length byte + 4 * 4 payload bytes, no per-element overhead.
  EXPECT_EQ(bytes.size(), 1u + 4u * sizeof(std::uint32_t));
}

TEST(Archive, RoundTripsVectorBool) {
  expect_roundtrip(std::vector<bool>{});
  expect_roundtrip(std::vector<bool>{true});
  expect_roundtrip(std::vector<bool>{true, false, true, true, false, false,
                                     true, false, true});  // crosses a byte
  std::vector<bool> big(1000);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = (i % 3) == 0;
  expect_roundtrip(big);
}

TEST(Archive, RoundTripsSequences) {
  expect_roundtrip(std::deque<int>{5, 6, 7});
  expect_roundtrip(std::list<std::string>{"x", "y"});
}

TEST(Archive, RoundTripsPairsAndTuples) {
  expect_roundtrip(std::pair<int, int>{1, 2});
  expect_roundtrip(std::pair<std::string, int>{"k", 9});
  expect_roundtrip(std::tuple<int, std::string, double>{1, "two", 3.0});
}

TEST(Archive, RoundTripsAssociativeContainers) {
  expect_roundtrip(std::map<int, std::string>{{1, "a"}, {2, "b"}});
  expect_roundtrip(std::unordered_map<std::string, int>{{"x", 1}, {"y", 2}});
  expect_roundtrip(std::set<int>{3, 1, 2});
  expect_roundtrip(std::unordered_set<std::string>{"p", "q"});
  expect_roundtrip(std::map<std::string, std::vector<int>>{{"k", {1, 2}}});
}

TEST(Archive, RoundTripsOptional) {
  expect_roundtrip(std::optional<int>{});
  expect_roundtrip(std::optional<int>{42});
  expect_roundtrip(std::optional<std::string>{"text"});
}

TEST(Archive, RoundTripsVariant) {
  using var = std::variant<std::monostate, int, std::string>;
  expect_roundtrip(var{});
  expect_roundtrip(var{7});
  expect_roundtrip(var{std::string("v")});
}

TEST(Archive, RoundTripsNonTrivialArray) {
  expect_roundtrip(std::array<std::string, 3>{"a", "bb", "ccc"});
}

// ------------------------------------------------------------ user types

struct edge_msg {
  std::uint64_t u = 0;
  std::uint64_t v = 0;
  // Trivially copyable: exercised through the raw fallback.
  bool operator==(const edge_msg&) const = default;
};

struct path_msg {
  std::uint64_t target = 0;
  std::vector<std::uint32_t> hops;
  std::string label;

  template <class Archive>
  void serialize(Archive& ar) {
    ar & target & hops & label;
  }

  bool operator==(const path_msg&) const = default;
};

TEST(Archive, RoundTripsTriviallyCopyableUserType) {
  expect_roundtrip(edge_msg{12, 34});
}

TEST(Archive, RoundTripsUserTypeWithMemberSerialize) {
  expect_roundtrip(path_msg{99, {1, 2, 3}, "shortest"});
  expect_roundtrip(std::vector<path_msg>{{1, {2}, "a"}, {3, {}, ""}});
}

namespace other_ns {

struct free_fn_type {
  int a = 0;
  std::string b;
  bool operator==(const free_fn_type&) const = default;
};

template <class Archive>
void serialize(Archive& ar, free_fn_type& v) {
  ar & v.a & v.b;
}

}  // namespace other_ns

TEST(Archive, RoundTripsUserTypeWithAdlFreeSerialize) {
  expect_roundtrip(other_ns::free_fn_type{5, "adl"});
}

// --------------------------------------------------------------- errors

TEST(Archive, ThrowsOnTruncatedInput) {
  const auto bytes = to_bytes(std::string("hello"));
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::span<const std::byte> part(bytes.data(), cut);
    EXPECT_THROW(from_bytes<std::string>(part), ygm::error);
  }
}

TEST(Archive, ThrowsOnTrailingBytes) {
  auto bytes = to_bytes(42);
  bytes.push_back(std::byte{0});
  EXPECT_THROW(from_bytes<int>({bytes.data(), bytes.size()}), ygm::error);
}

TEST(Archive, ThrowsOnOversizedContainerLength) {
  // A vector<uint64_t> claiming 2^40 elements in a 9-byte archive.
  std::vector<std::byte> bytes;
  ygm::ser::varint_encode(1ULL << 40, bytes);
  bytes.push_back(std::byte{0});
  EXPECT_THROW(from_bytes<std::vector<std::uint64_t>>(
                   {bytes.data(), bytes.size()}),
               ygm::error);
}

// -------------------------------------------------- take_bytes streaming

TEST(Archive, TakeBytesConsumesSequentialValues) {
  std::vector<std::byte> buf;
  ygm::ser::append_bytes(std::string("first"), buf);
  ygm::ser::append_bytes(std::uint32_t{7}, buf);
  ygm::ser::append_bytes(std::vector<int>{1, 2}, buf);

  std::span<const std::byte> cursor(buf.data(), buf.size());
  EXPECT_EQ(ygm::ser::take_bytes<std::string>(cursor), "first");
  EXPECT_EQ(ygm::ser::take_bytes<std::uint32_t>(cursor), 7u);
  EXPECT_EQ(ygm::ser::take_bytes<std::vector<int>>(cursor),
            (std::vector<int>{1, 2}));
  EXPECT_TRUE(cursor.empty());
}

// -------------------------------------------------------- property sweep

class ArchiveProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArchiveProperty, RandomNestedStructuresRoundTrip) {
  ygm::xoshiro256 rng(GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    std::map<std::string, std::vector<std::pair<std::uint64_t, std::string>>>
        value;
    const std::size_t keys = rng.below(6);
    for (std::size_t k = 0; k < keys; ++k) {
      std::string key(rng.below(12), 'a');
      for (auto& ch : key) ch = static_cast<char>('a' + rng.below(26));
      auto& vec = value[key];
      const std::size_t n = rng.below(8);
      for (std::size_t i = 0; i < n; ++i) {
        std::string s(rng.below(20), 'x');
        for (auto& ch : s) ch = static_cast<char>(rng.below(256));
        vec.emplace_back(rng(), std::move(s));
      }
    }
    expect_roundtrip(value);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArchiveProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 23, 47));

}  // namespace
