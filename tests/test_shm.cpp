// Tests for the shm transport's building blocks that the end-to-end
// transport suite cannot isolate: the SPSC byte ring (wrap-around copies,
// full-ring backpressure, the torn-size publication guard — exercised with
// real producer/consumer threads so TSan sees the release/acquire
// protocol), and the launcher's orphaned-segment sweep (a rank that dies
// before its endpoint destructor must not leak /dev/shm space).
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/assert.hpp"
#include "mpisim/runtime.hpp"
#include "transport/shm/launch.hpp"
#include "transport/shm/shm_transport.hpp"
#include "transport/shm/spsc_ring.hpp"

namespace {

namespace shm = ygm::transport::shm;
namespace sim = ygm::mpisim;
namespace tp = ygm::transport;

// In-process ring fixture: one ctrl + data area, a producer view and an
// independent consumer view (the staged cursor is producer-private, so the
// two sides must never share a view — exactly like the two processes in
// the real backend).
struct ring_fixture {
  static constexpr std::size_t cap = 256;  // power of two, tiny: wraps often
  shm::ring_ctrl ctrl;
  alignas(64) std::byte data[cap];
  shm::ring_view producer;
  shm::ring_view consumer;

  ring_fixture() {
    ctrl.init();
    producer = shm::ring_view(&ctrl, data, cap);
    consumer = shm::ring_view(&ctrl, data, cap);
  }
};

TEST(SpscRing, FramesSurviveWrapAround) {
  ring_fixture r;
  // Frame sizes coprime with the capacity so the wrap point lands inside
  // headers, payloads, and everywhere in between over the run.
  std::uint64_t next = 0;
  for (int i = 0; i < 500; ++i) {
    const std::size_t n = 1 + static_cast<std::size_t>((i * 37) % 90);
    std::vector<std::uint8_t> frame(n);
    for (std::size_t j = 0; j < n; ++j) {
      frame[j] = static_cast<std::uint8_t>((next + j) & 0xff);
    }
    ASSERT_TRUE(r.producer.try_write(frame.data(), n)) << "iteration " << i;
    ASSERT_EQ(r.consumer.readable(), n);
    std::vector<std::uint8_t> got(n);
    r.consumer.peek(0, got.data(), n);
    EXPECT_EQ(got, frame) << "bytes corrupted across wrap at iteration " << i;
    r.consumer.consume(n);
    next += n;
  }
  EXPECT_EQ(r.producer.in_flight(), 0u);
}

TEST(SpscRing, FullRingRefusesWritesUntilConsumed) {
  ring_fixture r;
  std::vector<std::uint8_t> chunk(64, 0xab);
  // Fill to the brim: 4 x 64 = 256 = capacity.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(r.producer.try_write(chunk.data(), chunk.size()));
  }
  EXPECT_EQ(r.producer.free_space(), 0u);
  // Backpressure: a full ring refuses even one byte, and refusing must not
  // disturb anything already published.
  std::uint8_t one = 0xcd;
  EXPECT_FALSE(r.producer.try_write(&one, 1));
  EXPECT_EQ(r.consumer.readable(), ring_fixture::cap);
  // Freeing exactly one chunk admits exactly one more.
  r.consumer.consume(64);
  EXPECT_EQ(r.producer.free_space(), 64u);
  EXPECT_FALSE(r.producer.try_write(chunk.data(), 65));
  EXPECT_TRUE(r.producer.try_write(chunk.data(), 64));
  EXPECT_EQ(r.producer.free_space(), 0u);
}

TEST(SpscRing, StagedBytesInvisibleUntilPublish) {
  // The torn-size guard: a consumer must never observe a frame header
  // whose payload has not fully arrived. stage() copies bytes without
  // moving the shared tail; only publish() makes the whole batch visible,
  // so readable() jumps from 0 to header+payload atomically.
  ring_fixture r;
  const std::uint32_t hdr = 0xfeedface;
  std::vector<std::uint8_t> payload(48, 0x77);
  r.producer.stage(&hdr, sizeof(hdr));
  EXPECT_EQ(r.consumer.readable(), 0u) << "staged header leaked (torn frame)";
  r.producer.stage(payload.data(), payload.size());
  EXPECT_EQ(r.consumer.readable(), 0u) << "staged payload leaked";
  EXPECT_EQ(r.producer.staged(), sizeof(hdr) + payload.size());
  EXPECT_EQ(r.producer.publish(), sizeof(hdr) + payload.size());
  ASSERT_EQ(r.consumer.readable(), sizeof(hdr) + payload.size());
  std::uint32_t got_hdr = 0;
  r.consumer.peek(0, &got_hdr, sizeof(got_hdr));
  EXPECT_EQ(got_hdr, hdr);
}

TEST(SpscRing, ThreadedProducerConsumerStress) {
  // Real concurrency across the release/acquire protocol (this is the test
  // TSan is for): length-prefixed frames with a rolling checksum, producer
  // spinning against free_space, consumer against readable. Any torn size
  // or reordered byte shows up as a checksum mismatch or a hang-guard trip.
  ring_fixture r;
  constexpr int kFrames = 20000;
  std::atomic<bool> failed{false};

  std::thread producer([&] {
    std::uint64_t seed = 0x9e3779b97f4a7c15ull;
    for (int i = 0; i < kFrames && !failed.load(std::memory_order_relaxed);
         ++i) {
      const std::uint8_t n = static_cast<std::uint8_t>(1 + (seed % 100));
      std::uint8_t frame[101];
      frame[0] = n;
      for (std::uint8_t j = 0; j < n; ++j) {
        frame[1 + j] = static_cast<std::uint8_t>((seed >> (j % 8)) & 0xff);
      }
      const std::size_t total = 1 + static_cast<std::size_t>(n);
      while (r.producer.free_space() < total) {
        std::this_thread::yield();
      }
      r.producer.stage(frame, total);
      r.producer.publish();
      seed = seed * 6364136223846793005ull + 1442695040888963407ull;
    }
    r.producer.set_fin();
  });

  std::uint64_t seed = 0x9e3779b97f4a7c15ull;
  int got = 0;
  while (got < kFrames) {
    if (r.consumer.readable() < 1) {
      ASSERT_FALSE(r.consumer.fin() && r.consumer.readable() == 0 &&
                   got < kFrames)
          << "producer finished but frames are missing";
      std::this_thread::yield();
      continue;
    }
    std::uint8_t n = 0;
    r.consumer.peek(0, &n, 1);
    const std::size_t total = 1 + static_cast<std::size_t>(n);
    // Publication covers whole frames: a visible size implies the payload
    // is visible too. A torn write would trip exactly here.
    ASSERT_GE(r.consumer.readable(), total) << "torn frame at " << got;
    std::uint8_t body[100];
    r.consumer.peek(1, body, n);
    const std::uint8_t expect_n = static_cast<std::uint8_t>(1 + (seed % 100));
    ASSERT_EQ(n, expect_n) << "frame size corrupted at " << got;
    for (std::uint8_t j = 0; j < n; ++j) {
      ASSERT_EQ(body[j], static_cast<std::uint8_t>((seed >> (j % 8)) & 0xff))
          << "payload corrupted at frame " << got << " byte " << int(j);
    }
    r.consumer.consume(total);
    seed = seed * 6364136223846793005ull + 1442695040888963407ull;
    ++got;
  }
  producer.join();
  EXPECT_EQ(r.producer.in_flight(), 0u);
}

// ---------------------------------------------------- orphaned segments

TEST(ShmCleanup, AbnormalChildExitLeavesNoSegments) {
  // Children that die before their endpoint destructor never shm_unlink
  // their own segment; the launcher's post-reap sweep must. Use an
  // explicit rendezvous dir so the segment names are knowable afterwards.
  char tmpl[] = "/tmp/ygm-shm-orphan-XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;

  sim::run_options o;
  o.nranks = 2;
  o.backend = tp::backend_kind::shm;
  o.chaos = sim::chaos_config{};
  o.socket_dir = dir;
  try {
    sim::run(o, [](sim::comm& c) {
      // Handshake is complete (the comm exists) and both segments are
      // mapped; now die without unwinding. Both ranks exit abruptly so no
      // survivor is left waiting out its fin deadline.
      c.barrier();
      ::_exit(2);
    });
    FAIL() << "expected abnormal child exits to surface as an error";
  } catch (const ygm::error&) {
    // Expected: ranks terminated without reporting.
  }

  for (int r = 0; r < 2; ++r) {
    const std::string name = shm::segment_name(dir, r);
    errno = 0;
    const int fd = ::shm_open(name.c_str(), O_RDONLY, 0);
    if (fd >= 0) ::close(fd);
    EXPECT_LT(fd, 0) << "orphaned segment survived the sweep: " << name;
    EXPECT_EQ(errno, ENOENT) << name;
  }
  ::rmdir(dir.c_str());
}

}  // namespace
