// Tests for the telemetry subsystem: registry merge across simulated ranks,
// histogram percentiles, ring-buffer overflow policy, and a bench-style run
// whose Chrome-trace JSON export is parsed back and validated.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/mini_json.hpp"
#include "core/ygm.hpp"
#include "telemetry/telemetry.hpp"

namespace {

namespace sim = ygm::mpisim;
namespace tel = ygm::telemetry;
using ygm::common::json_parser;
using ygm::common::json_value;
using ygm::core::comm_world;
using ygm::core::mailbox;
using ygm::routing::scheme_kind;
using ygm::routing::topology;

// -------------------------------------------------- histogram percentiles

TEST(Histogram, ExactStatsAndPercentileBounds) {
  tel::histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));

  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.sum(), 500500.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_DOUBLE_EQ(h.mean(), 500.5);

  // Percentiles are log2-bucket approximations: within a factor of 2 of the
  // exact order statistic, clamped to [min, max].
  const double p50 = h.percentile(0.50);
  EXPECT_GE(p50, 250.0);
  EXPECT_LE(p50, 1000.0);
  const double p99 = h.percentile(0.99);
  EXPECT_GE(p99, 495.0);
  EXPECT_LE(p99, 1000.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 1000.0);

  // Monotone in p.
  double prev = 0;
  for (double p = 0.0; p <= 1.0; p += 0.05) {
    const double q = h.percentile(p);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

TEST(Histogram, SingleBucketDistributionIsExactish) {
  tel::histogram h;
  for (int i = 0; i < 100; ++i) h.record(64.0);
  // All mass in one bucket: every percentile must land on [min, max] = 64.
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 64.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 64.0);
}

TEST(Histogram, MergeMatchesCombinedRecording) {
  tel::histogram a, b, both;
  for (int i = 0; i < 50; ++i) {
    a.record(i);
    both.record(i);
  }
  for (int i = 1000; i < 1100; ++i) {
    b.record(i);
    both.record(i);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_DOUBLE_EQ(a.sum(), both.sum());
  EXPECT_DOUBLE_EQ(a.min(), both.min());
  EXPECT_DOUBLE_EQ(a.max(), both.max());
  EXPECT_DOUBLE_EQ(a.percentile(0.9), both.percentile(0.9));
}

// ------------------------------------------------- ring overflow policy

TEST(EventRing, OverwritesOldestAndCountsDrops) {
  tel::event_ring ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    tel::trace_event e;
    e.arg0 = i;
    ring.push(e);
  }
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.recorded(), 10u);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 6u);

  // Overwrite-oldest: the survivors are the NEWEST four, oldest first.
  std::vector<std::uint64_t> kept;
  ring.for_each([&](const tel::trace_event& e) { kept.push_back(e.arg0); });
  EXPECT_EQ(kept, (std::vector<std::uint64_t>{6, 7, 8, 9}));
}

TEST(EventRing, ZeroCapacityDropsEverythingButCounts) {
  tel::event_ring ring(0);
  ring.push({});
  ring.push({});
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.recorded(), 2u);
  EXPECT_EQ(ring.dropped(), 2u);
}

// ------------------------------------- registry merge across ranks

TEST(Session, RegistryMergesAcrossSimulatedRanks) {
  constexpr int kRanks = 6;
  tel::session session;
  tel::set_global(&session);

  sim::run(kRanks, [&](sim::comm& c) {
    // mpisim attached this rank thread to its lane automatically.
    auto* rec = tel::tls();
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->rank(), c.rank());

    rec->metrics().counter("test.per_rank") +=
        static_cast<std::uint64_t>(c.rank() + 1);
    double& g = rec->metrics().gauge("test.rank_gauge");
    g = static_cast<double>(c.rank());
    rec->metrics().histo("test.histo").record(
        static_cast<double>(100 * (c.rank() + 1)));
  });
  tel::set_global(nullptr);

  const tel::metrics_registry m = session.merged_metrics();
  // 1 + 2 + ... + kRanks
  EXPECT_EQ(m.counters().at("test.per_rank"),
            static_cast<std::uint64_t>(kRanks * (kRanks + 1) / 2));
  // Gauges merge by max.
  EXPECT_DOUBLE_EQ(m.gauges().at("test.rank_gauge"), kRanks - 1);
  // Histograms merge bucket-wise.
  EXPECT_EQ(m.histos().at("test.histo").count(),
            static_cast<std::uint64_t>(kRanks));
  EXPECT_DOUBLE_EQ(m.histos().at("test.histo").max(), 100.0 * kRanks);

  // Merging twice must not change totals (fast-slot folding is delta-based).
  const tel::metrics_registry again = session.merged_metrics();
  EXPECT_EQ(again.counters().at("test.per_rank"),
            m.counters().at("test.per_rank"));
}

TEST(Session, PerWorldMetricsDoNotBleedAcrossRuns) {
  // One session reused across consecutive mpisim::run calls: the all-worlds
  // merge mixes the runs (gauges keep the max over STALE worlds), so the
  // per-world accessors and the metrics JSON "worlds" array must keep each
  // run readable in isolation.
  tel::session session;
  tel::set_global(&session);
  sim::run(2, [&](sim::comm&) {
    tel::tls()->metrics().gauge("test.queue_depth") = 100.0;
    tel::tls()->metrics().counter("test.msgs") += 7;
  });
  sim::run(2, [&](sim::comm&) {
    tel::tls()->metrics().gauge("test.queue_depth") = 5.0;
    tel::tls()->metrics().counter("test.msgs") += 1;
  });
  tel::set_global(nullptr);

  ASSERT_EQ(session.world_count(), 2);
  // The stale first run must not leak into the second run's view...
  const tel::metrics_registry run2 = session.merged_metrics(1);
  EXPECT_DOUBLE_EQ(run2.gauges().at("test.queue_depth"), 5.0);
  EXPECT_EQ(run2.counters().at("test.msgs"), 2u);
  // ...while the all-worlds merge (documented behavior) still mixes them.
  const tel::metrics_registry all = session.merged_metrics();
  EXPECT_DOUBLE_EQ(all.gauges().at("test.queue_depth"), 100.0);
  EXPECT_EQ(all.counters().at("test.msgs"), 16u);

  // The JSON export carries the per-world split whenever >1 world exists.
  std::ostringstream os;
  session.write_metrics_json(os);
  const json_value root = json_parser(os.str()).parse();
  const auto& worlds = root.obj().at("worlds").arr();
  ASSERT_EQ(worlds.size(), 2u);
  EXPECT_DOUBLE_EQ(
      worlds[0].obj().at("gauges").obj().at("test.queue_depth").num(), 100.0);
  EXPECT_DOUBLE_EQ(
      worlds[1].obj().at("gauges").obj().at("test.queue_depth").num(), 5.0);
  EXPECT_DOUBLE_EQ(worlds[1].obj().at("counters").obj().at("test.msgs").num(),
                   2.0);
}

TEST(Session, MailboxAndSubstrateCountersReachTheRegistry) {
  constexpr int kRanks = 8;
  constexpr int kSendsPerRank = 40;
  const topology topo(4, 2);

  tel::session session;
  tel::set_global(&session);
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, scheme_kind::nlnr);
    std::uint64_t sink = 0;
    mailbox<std::uint64_t> mb(
        world, [&](const std::uint64_t& v) { sink += v; }, 256);
    for (int i = 0; i < kSendsPerRank; ++i) {
      mb.send((c.rank() + 1 + i) % c.size(), 7);
    }
    mb.wait_empty();
    c.barrier();
  });
  tel::set_global(nullptr);

  const tel::metrics_registry m = session.merged_metrics();
  // The mailbox published its stats into the registry at destruction.
  EXPECT_EQ(m.counters().at("mailbox.app_sends"),
            static_cast<std::uint64_t>(kRanks * kSendsPerRank));
  EXPECT_EQ(m.counters().at("mailbox.deliveries"),
            static_cast<std::uint64_t>(kRanks * kSendsPerRank));
  // Substrate layers recorded through their fast slots.
  EXPECT_GT(m.counters().at("route.next_hop"), 0u);
  EXPECT_GT(m.counters().at("route.next_hop.NLNR"), 0u);
  EXPECT_GT(m.counters().at("mpi.sends"), 0u);
  EXPECT_GT(m.counters().at("mpi.send_bytes"), 0u);
  // Packet-size histograms saw the coalesced flush traffic.
  EXPECT_GT(m.histos().at("mailbox.remote_packet_bytes").count(), 0u);
}

// ------------------------------------------- Chrome trace round trip

TEST(Export, BenchStyleRunProducesValidChromeTrace) {
  const topology topo(2, 2);
  tel::session session;
  tel::set_global(&session);
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, scheme_kind::node_remote);
    std::uint64_t sink = 0;
    mailbox<std::uint64_t> mb(
        world, [&](const std::uint64_t& v) { sink += v; }, 128);
    for (int i = 0; i < 200; ++i) mb.send((c.rank() + 1) % c.size(), 1);
    mb.send_bcast(5);
    mb.wait_empty();
    c.barrier();
  });
  tel::set_global(nullptr);

  std::ostringstream os;
  session.write_chrome_trace(os);
  const std::string trace = os.str();

  const json_value root = json_parser(trace).parse();
  ASSERT_TRUE(root.is_object());
  const auto& events = root.obj().at("traceEvents");
  ASSERT_TRUE(events.is_array());

  // Every (pid, tid) lane must carry a rank.main complete event; every
  // event must be structurally sound.
  std::map<std::pair<int, int>, bool> lane_has_main;
  int spans = 0;
  for (const auto& ev : events.arr()) {
    ASSERT_TRUE(ev.is_object());
    const auto& o = ev.obj();
    const std::string& ph = o.at("ph").str();
    ASSERT_TRUE(ph == "M" || ph == "X" || ph == "i");
    ASSERT_TRUE(o.count("name") == 1);
    ASSERT_TRUE(o.count("pid") == 1);
    if (ph == "M") continue;
    const auto lane = std::pair{static_cast<int>(o.at("pid").num()),
                                static_cast<int>(o.at("tid").num())};
    EXPECT_GE(o.at("ts").num(), 0.0);
    if (ph == "X") {
      ++spans;
      EXPECT_GE(o.at("dur").num(), 0.0);
      if (o.at("name").str() == "rank.main") lane_has_main[lane] = true;
    }
  }
  EXPECT_GT(spans, 0);
  EXPECT_EQ(lane_has_main.size(), static_cast<std::size_t>(topo.num_ranks()));

  // The metrics export must be valid JSON too, with the expected groups.
  std::ostringstream ms;
  session.write_metrics_json(ms);
  const json_value metrics = json_parser(ms.str()).parse();
  ASSERT_TRUE(metrics.is_object());
  EXPECT_TRUE(metrics.obj().at("counters").is_object());
  EXPECT_TRUE(metrics.obj().at("gauges").is_object());
  EXPECT_TRUE(metrics.obj().at("histograms").is_object());
  EXPECT_GT(
      metrics.obj().at("counters").obj().at("mailbox.app_sends").num(), 0.0);
}

TEST(Export, SpansCoverRankWallTime) {
  // The acceptance bar for traces: per rank, top-level span coverage of the
  // measured window must be essentially total. rank.main spans the whole
  // rank function by construction; verify it brackets the mailbox spans.
  const topology topo(2, 2);
  tel::session session;
  tel::set_global(&session);
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, scheme_kind::node_local);
    std::uint64_t sink = 0;
    mailbox<std::uint64_t> mb(
        world, [&](const std::uint64_t& v) { sink += v; }, 64);
    for (int i = 0; i < 500; ++i) mb.send((c.rank() + i) % c.size(), 2);
    mb.wait_empty();
    c.barrier();
  });
  tel::set_global(nullptr);

  // Per lane: rank.main covers every other event on the lane.
  struct lane_info {
    double main_start = -1, main_end = -1;
    double min_ts = 1e300, max_end = 0;
  };
  std::map<std::pair<int, int>, lane_info> lanes;
  std::ostringstream os;
  session.write_chrome_trace(os);
  const json_value root = json_parser(os.str()).parse();
  for (const auto& ev : root.obj().at("traceEvents").arr()) {
    const auto& o = ev.obj();
    if (o.at("ph").str() == "M") continue;
    const auto lane = std::pair{static_cast<int>(o.at("pid").num()),
                                static_cast<int>(o.at("tid").num())};
    auto& li = lanes[lane];
    const double ts = o.at("ts").num();
    const double end =
        o.at("ph").str() == "X" ? ts + o.at("dur").num() : ts;
    if (o.at("ph").str() == "X" && o.at("name").str() == "rank.main") {
      li.main_start = ts;
      li.main_end = end;
    }
    li.min_ts = std::min(li.min_ts, ts);
    li.max_end = std::max(li.max_end, end);
  }
  ASSERT_EQ(lanes.size(), static_cast<std::size_t>(topo.num_ranks()));
  for (const auto& [lane, li] : lanes) {
    ASSERT_GE(li.main_start, 0.0) << "lane missing rank.main";
    // Small tolerance: timestamps are doubles from the same clock.
    EXPECT_LE(li.main_start, li.min_ts + 1.0);
    EXPECT_GE(li.main_end + 1.0, li.max_end);
  }
}

}  // namespace
