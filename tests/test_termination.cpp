// Tests for termination detection (paper §IV-B): the blocking WAIT_EMPTY
// path is exercised throughout test_mailbox.cpp; this file focuses on the
// nonblocking TEST_EMPTY detector, including restarts across communication
// epochs and detection under uneven rank progress.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>

#include "common/rng.hpp"
#include "core/ygm.hpp"

namespace {

namespace sim = ygm::mpisim;
using ygm::core::comm_world;
using ygm::core::mailbox;
using ygm::routing::scheme_kind;
using ygm::routing::topology;

TEST(TestEmpty, SingleRankDetectsQuiescence) {
  sim::run(1, [](sim::comm& c) {
    comm_world world(c, 1, scheme_kind::no_route);
    int got = 0;
    mailbox<int> mb(world, [&](const int& v) { got += v; });
    mb.send(0, 5);
    // Detection needs two stable polls (four-counter method).
    bool done = false;
    for (int i = 0; i < 10 && !done; ++i) done = mb.test_empty();
    EXPECT_TRUE(done);
    EXPECT_EQ(got, 5);
  });
}

TEST(TestEmpty, DetectsAfterAllTrafficDelivered) {
  const topology topo(2, 2);
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, scheme_kind::nlnr);
    std::uint64_t got = 0;
    mailbox<std::uint64_t> mb(world, [&](const std::uint64_t& v) { got += v; },
                              64);
    for (int d = 0; d < c.size(); ++d) {
      if (d != c.rank()) mb.send(d, 1);
    }
    // Poll until globally quiescent; every rank keeps polling so the tree
    // rounds can progress.
    int polls = 0;
    while (!mb.test_empty()) {
      ++polls;
      ASSERT_LT(polls, 1000000) << "test_empty never detected quiescence";
      std::this_thread::yield();
    }
    EXPECT_EQ(got, static_cast<std::uint64_t>(c.size() - 1));
  });
}

TEST(TestEmpty, DoesNotFirePrematurelyWhileWorkRemains) {
  // Rank 0 delays producing its messages; test_empty must not report
  // quiescence before they are delivered.
  const topology topo(2, 2);
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, scheme_kind::node_remote);
    std::uint64_t got = 0;
    mailbox<std::uint64_t> mb(world, [&](const std::uint64_t& v) { got += v; });

    const std::uint64_t expected =
        c.rank() == 1 ? static_cast<std::uint64_t>(c.size()) * 10 : 0;

    if (c.rank() == 0) {
      // Queue traffic, then stall before joining the detection protocol.
      // The other ranks spin on test_empty meanwhile; no round can complete
      // without rank 0, and once it joins it must flush these sends first.
      for (int i = 0; i < 10 * c.size(); ++i) mb.send(1, 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    while (!mb.test_empty()) std::this_thread::yield();
    // Quiescence implies full delivery: no partial counts possible.
    EXPECT_EQ(got, expected);
  });
}

TEST(TestEmpty, RestartsAcrossCommunicationEpochs) {
  const topology topo(2, 2);
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, scheme_kind::node_local);
    std::uint64_t got = 0;
    mailbox<std::uint64_t> mb(world, [&](const std::uint64_t& v) { got += v; });

    for (int epoch = 1; epoch <= 3; ++epoch) {
      for (int d = 0; d < c.size(); ++d) {
        if (d != c.rank()) mb.send(d, static_cast<std::uint64_t>(epoch));
      }
      while (!mb.test_empty()) std::this_thread::yield();
      // After epoch e, each rank has received (1 + ... + e) from each peer.
      const std::uint64_t per_peer =
          static_cast<std::uint64_t>(epoch) * (epoch + 1) / 2;
      EXPECT_EQ(got, per_peer * static_cast<std::uint64_t>(c.size() - 1))
          << "epoch " << epoch;
      c.barrier();
    }
  });
}

TEST(TestEmpty, MixesWithExternalWorkQueues) {
  // The HavoqGT pattern the paper describes: an application-level work queue
  // drained between polls, with messages spawning new local work.
  const topology topo(2, 2);
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, scheme_kind::nlnr);
    std::vector<std::uint64_t> work;  // external queue
    std::uint64_t processed = 0;

    mailbox<std::uint64_t>* mbp = nullptr;
    mailbox<std::uint64_t> mb(
        world, [&](const std::uint64_t& v) { work.push_back(v); });
    mbp = &mb;

    // Seed: each rank queues local work items that generate messages.
    ygm::xoshiro256 rng(99 + static_cast<std::uint64_t>(c.rank()));
    for (int i = 0; i < 20; ++i) work.push_back(4);  // ttl 4

    bool done = false;
    while (!done) {
      while (!work.empty()) {
        const std::uint64_t ttl = work.back();
        work.pop_back();
        ++processed;
        if (ttl > 0) {
          const int dest =
              static_cast<int>(rng.below(static_cast<std::uint64_t>(c.size())));
          mbp->send(dest, ttl - 1);
        }
      }
      done = mb.test_empty() && work.empty();
    }
    const auto total = c.allreduce(processed, sim::op_sum{});
    // Each of the 20*P seeds is processed 5 times (ttl 4..0).
    EXPECT_EQ(total, static_cast<std::uint64_t>(c.size()) * 20 * 5);
  });
}

TEST(WaitEmpty, IsIdempotentWhenAlreadyQuiescent) {
  const topology topo(2, 2);
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, scheme_kind::node_remote);
    mailbox<int> mb(world, [](const int&) {});
    mb.wait_empty();
    mb.wait_empty();  // must not deadlock or miscount
    for (int d = 0; d < c.size(); ++d) {
      if (d != c.rank()) mb.send(d, 1);
    }
    mb.wait_empty();
    EXPECT_EQ(mb.stats().deliveries, static_cast<std::uint64_t>(c.size() - 1));
  });
}

TEST(WaitEmpty, HandlesSlowRankWithHeavyInbound) {
  // One rank is slow to enter wait_empty while everyone floods it with
  // messages; the fast ranks sit in the termination loop forwarding traffic.
  const topology topo(4, 2);
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, scheme_kind::nlnr);
    std::uint64_t got = 0;
    mailbox<std::uint64_t> mb(world, [&](const std::uint64_t& v) { got += v; },
                              128);
    if (c.rank() != 0) {
      for (int i = 0; i < 500; ++i) mb.send(0, 1);
    } else {
      // Simulate slow computation before joining the protocol.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    mb.wait_empty();
    if (c.rank() == 0) {
      EXPECT_EQ(got, 500u * static_cast<std::uint64_t>(c.size() - 1));
    }
  });
}

}  // namespace

// (appended) chaos-PR regression tests: round-stamped detector messages and
// the shared wait_empty/test_empty protocol.

#include <tuple>

TEST(Termination, StaleContributionFromLaggedRoundIsRejected) {
  using contrib = std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>;
  sim::run(2, [](sim::comm& c) {
    comm_world world(c, 1, scheme_kind::no_route);
    const int tag_base =
        world.reserve_tag_block(ygm::core::termination_detector::tags_used);
    ygm::core::termination_detector td(world, tag_base);
    if (c.rank() == 1) {
      // Forge a duplicate round-0 contribution ahead of the real protocol.
      // The root consumes it as rank 1's round-0 message; the genuine one
      // then sits queued until the %4 tag window wraps at round 4, where —
      // without the round stamp — its 4-round-stale counts would silently
      // fold into round 4's totals.
      c.send(contrib{7, 7, 0}, 0, tag_base + 0);
    }
    c.barrier();
    auto drive = [&] {
      for (int i = 0; i < 20000 && td.rounds() < 8; ++i) {
        td.poll(1, 1);
        std::this_thread::yield();
      }
    };
    if (c.rank() == 0) {
      EXPECT_THROW(drive(), ygm::error);
      EXPECT_EQ(td.rounds(), 4u);  // detected exactly at the window wrap
    } else {
      drive();  // bounded and nonblocking; exits once the root stops
    }
    c.barrier();
  });
}

TEST(WaitEmpty, MixesWithTestEmptyAcrossRanks) {
  // wait_empty() must ride the same tree-detector protocol as test_empty():
  // if it used its own blocking collective, a world where some ranks block
  // in wait_empty while others poll test_empty would deadlock.
  const topology topo(2, 2);
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, scheme_kind::nlnr);
    std::uint64_t got = 0;
    mailbox<std::uint64_t> mb(world, [&](const std::uint64_t& v) { got += v; },
                              64);
    for (int d = 0; d < c.size(); ++d) mb.send(d, 1);
    if (c.rank() % 2 == 0) {
      mb.wait_empty();
    } else {
      while (!mb.test_empty()) std::this_thread::yield();
    }
    EXPECT_EQ(got, static_cast<std::uint64_t>(c.size()));
  });
}
