// Tests for the transport substrate (src/transport/): backend selection,
// the multi-process socket backend (point-to-point, collectives,
// communicator algebra, abort propagation), the delivery-invariant ledger
// and a reduced chaos sweep on BOTH backends, cross-backend parity of a
// seeded workload, and per-backend telemetry publication.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/hybrid_mailbox.hpp"
#include "core/invariants.hpp"
#include "core/mailbox.hpp"
#include "mpisim/runtime.hpp"
#include "ser/serialize.hpp"
#include "telemetry/telemetry.hpp"
#include "transport/endpoint.hpp"

namespace {

namespace sim = ygm::mpisim;
namespace tp = ygm::transport;
namespace tel = ygm::telemetry;

sim::run_options on_backend(tp::backend_kind k, int nranks) {
  sim::run_options o;
  o.nranks = nranks;
  o.backend = k;
  // Pin chaos off unless a test supplies its own config, so an ambient
  // YGM_CHAOS in the environment cannot skew the deterministic tests here.
  o.chaos = ygm::mpisim::chaos_config{};
  return o;
}

// --------------------------------------------------------- backend naming

TEST(Backend, NameRoundTrip) {
  EXPECT_EQ(tp::to_string(tp::backend_kind::inproc), "inproc");
  EXPECT_EQ(tp::to_string(tp::backend_kind::socket), "socket");
  EXPECT_EQ(tp::to_string(tp::backend_kind::shm), "shm");
  EXPECT_EQ(tp::backend_from_name("inproc"), tp::backend_kind::inproc);
  EXPECT_EQ(tp::backend_from_name("socket"), tp::backend_kind::socket);
  EXPECT_EQ(tp::backend_from_name("shm"), tp::backend_kind::shm);
  EXPECT_FALSE(tp::backend_from_name("tcp").has_value());
  EXPECT_FALSE(tp::backend_from_name("").has_value());
}

TEST(Backend, EnvSelection) {
  ASSERT_EQ(unsetenv("YGM_TRANSPORT"), 0);
  EXPECT_EQ(tp::backend_from_env(), tp::backend_kind::inproc);
  ASSERT_EQ(setenv("YGM_TRANSPORT", "socket", 1), 0);
  EXPECT_EQ(tp::backend_from_env(), tp::backend_kind::socket);
  ASSERT_EQ(setenv("YGM_TRANSPORT", "shm", 1), 0);
  EXPECT_EQ(tp::backend_from_env(), tp::backend_kind::shm);
  ASSERT_EQ(setenv("YGM_TRANSPORT", "", 1), 0);
  EXPECT_EQ(tp::backend_from_env(), tp::backend_kind::inproc);
  // A typo must not silently fake multi-process coverage.
  ASSERT_EQ(setenv("YGM_TRANSPORT", "sockets", 1), 0);
  EXPECT_THROW((void)tp::backend_from_env(), ygm::error);
  ASSERT_EQ(unsetenv("YGM_TRANSPORT"), 0);
}

// ------------------------------------------------- socket backend basics

TEST(Socket, PointToPointAcrossProcesses) {
  const auto blobs = sim::run_collect(
      on_backend(tp::backend_kind::socket, 4), [](sim::comm& c) {
        // Ring: send my rank left and right, typed.
        const int p = c.size();
        c.send(c.rank() * 10, (c.rank() + 1) % p, 7);
        c.send(std::string("hi from ") + std::to_string(c.rank()),
               (c.rank() + p - 1) % p, 8);
        const int from_left = c.recv<int>((c.rank() + p - 1) % p, 7);
        EXPECT_EQ(from_left, ((c.rank() + p - 1) % p) * 10);
        sim::status st;
        const auto greeting =
            c.recv<std::string>(sim::any_source, 8, &st);
        EXPECT_EQ(st.source, (c.rank() + 1) % p);
        EXPECT_EQ(greeting, "hi from " + std::to_string((c.rank() + 1) % p));
        // Each process must really be its own rank: the static below is
        // per-process state, so with forked ranks every rank sees 1.
        static int calls = 0;
        ++calls;
        auto out = std::vector<std::byte>{};
        ygm::ser::append_bytes(calls, out);
        return out;
      });
  ASSERT_EQ(blobs.size(), 4u);
  for (const auto& b : blobs) {
    EXPECT_EQ(ygm::ser::from_bytes<int>({b.data(), b.size()}), 1);
  }
}

TEST(Socket, ProbeAndPending) {
  sim::run(on_backend(tp::backend_kind::socket, 4), [](sim::comm& c) {
    if (c.rank() == 0) {
      for (int dest = 1; dest < c.size(); ++dest) c.send(dest * 3, dest, 5);
      c.barrier();
    } else {
      const auto st = c.probe(0, 5);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 5);
      EXPECT_GE(c.pending_messages(), 1u);
      EXPECT_EQ(c.recv<int>(0, 5), c.rank() * 3);
      c.barrier();
    }
  });
}

TEST(Socket, CollectivesMatchInprocSemantics) {
  sim::run(on_backend(tp::backend_kind::socket, 5), [](sim::comm& c) {
    const int p = c.size();
    c.barrier();

    int v = c.rank() == 2 ? 99 : -1;
    c.bcast(v, 2);
    EXPECT_EQ(v, 99);

    const int sum = c.allreduce(c.rank() + 1, sim::op_sum{});
    EXPECT_EQ(sum, p * (p + 1) / 2);
    EXPECT_EQ(c.allreduce_sum(static_cast<std::uint64_t>(c.rank() + 1)),
              static_cast<std::uint64_t>(p * (p + 1) / 2));

    const auto all = c.allgather(c.rank() * 2);
    ASSERT_EQ(static_cast<int>(all.size()), p);
    for (int r = 0; r < p; ++r) EXPECT_EQ(all[static_cast<std::size_t>(r)], r * 2);

    std::vector<int> pieces;
    for (int r = 0; r < p; ++r) pieces.push_back(100 + r);
    EXPECT_EQ(c.scatter(pieces, 1), 100 + c.rank());

    EXPECT_EQ(c.scan(1, sim::op_sum{}), c.rank() + 1);
    EXPECT_EQ(c.exscan(1, sim::op_sum{}), c.rank());

    std::vector<std::vector<int>> sendbufs(static_cast<std::size_t>(p));
    for (int dest = 0; dest < p; ++dest) {
      sendbufs[static_cast<std::size_t>(dest)] = {c.rank(), dest};
    }
    const auto recvd = c.alltoallv(sendbufs);
    for (int src = 0; src < p; ++src) {
      EXPECT_EQ(recvd[static_cast<std::size_t>(src)],
                (std::vector<int>{src, c.rank()}));
    }
  });
}

TEST(Socket, SplitAndDup) {
  sim::run(on_backend(tp::backend_kind::socket, 4), [](sim::comm& c) {
    auto half = c.split(c.rank() % 2, c.rank());
    EXPECT_EQ(half.size(), 2);
    const int hsum = half.allreduce(c.rank(), sim::op_sum{});
    EXPECT_EQ(hsum, c.rank() % 2 == 0 ? 0 + 2 : 1 + 3);

    auto clone = c.dup();
    // Traffic on the dup must not collide with the parent: exchange on both
    // with the same tag.
    const int peer = c.rank() ^ 1;
    c.send(c.rank(), peer, 3);
    clone.send(c.rank() + 100, peer, 3);
    EXPECT_EQ(c.recv<int>(peer, 3), peer);
    EXPECT_EQ(clone.recv<int>(peer, 3), peer + 100);
    c.barrier();
  });
}

TEST(Socket, RankFailurePropagatesWithoutDeadlock) {
  try {
    sim::run(on_backend(tp::backend_kind::socket, 4), [](sim::comm& c) {
      if (c.rank() == 2) throw std::runtime_error("rank 2 exploded");
      // Other ranks block forever; the abort frame must wake them.
      (void)c.recv_bytes(sim::any_source, 0);
    });
    FAIL() << "expected the rank failure to rethrow in the parent";
  } catch (const ygm::error& e) {
    EXPECT_NE(std::string(e.what()).find("rank 2 exploded"),
              std::string::npos);
  }
}

TEST(Socket, SingleRankWorld) {
  sim::run(on_backend(tp::backend_kind::socket, 1), [](sim::comm& c) {
    c.barrier();
    c.send(41, 0, 0);  // self-send loops through the own slot
    EXPECT_EQ(c.recv<int>(0, 0), 41);
    EXPECT_EQ(c.allreduce_sum(7), 7u);
  });
}

// --------------------------------------------------- shm backend basics

TEST(Shm, PointToPointAcrossProcesses) {
  const auto blobs = sim::run_collect(
      on_backend(tp::backend_kind::shm, 4), [](sim::comm& c) {
        const int p = c.size();
        c.send(c.rank() * 10, (c.rank() + 1) % p, 7);
        c.send(std::string("hi from ") + std::to_string(c.rank()),
               (c.rank() + p - 1) % p, 8);
        const int from_left = c.recv<int>((c.rank() + p - 1) % p, 7);
        EXPECT_EQ(from_left, ((c.rank() + p - 1) % p) * 10);
        sim::status st;
        const auto greeting = c.recv<std::string>(sim::any_source, 8, &st);
        EXPECT_EQ(st.source, (c.rank() + 1) % p);
        EXPECT_EQ(greeting, "hi from " + std::to_string((c.rank() + 1) % p));
        // Real process isolation, same witness as the socket test.
        static int calls = 0;
        ++calls;
        auto out = std::vector<std::byte>{};
        ygm::ser::append_bytes(calls, out);
        return out;
      });
  ASSERT_EQ(blobs.size(), 4u);
  for (const auto& b : blobs) {
    EXPECT_EQ(ygm::ser::from_bytes<int>({b.data(), b.size()}), 1);
  }
}

TEST(Shm, CollectivesMatchInprocSemantics) {
  sim::run(on_backend(tp::backend_kind::shm, 5), [](sim::comm& c) {
    const int p = c.size();
    c.barrier();
    int v = c.rank() == 2 ? 99 : -1;
    c.bcast(v, 2);
    EXPECT_EQ(v, 99);
    const int sum = c.allreduce(c.rank() + 1, sim::op_sum{});
    EXPECT_EQ(sum, p * (p + 1) / 2);
    const auto all = c.allgather(c.rank() * 2);
    ASSERT_EQ(static_cast<int>(all.size()), p);
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)], r * 2);
    }
    std::vector<std::vector<int>> sendbufs(static_cast<std::size_t>(p));
    for (int dest = 0; dest < p; ++dest) {
      sendbufs[static_cast<std::size_t>(dest)] = {c.rank(), dest};
    }
    const auto recvd = c.alltoallv(sendbufs);
    for (int src = 0; src < p; ++src) {
      EXPECT_EQ(recvd[static_cast<std::size_t>(src)],
                (std::vector<int>{src, c.rank()}));
    }
  });
}

TEST(Shm, LargePayloadsSpillThroughSharedPool) {
  // Payloads far beyond the inline threshold (16 KiB) and beyond the spill
  // ring itself (256 KiB) must stream through intact, both directions at
  // once so the chunked spill protocol is exercised under crossing traffic.
  sim::run(on_backend(tp::backend_kind::shm, 2), [](sim::comm& c) {
    const int peer = c.rank() ^ 1;
    std::vector<std::uint8_t> big(3 * 256 * 1024 + 12345);
    for (std::size_t i = 0; i < big.size(); ++i) {
      big[i] = static_cast<std::uint8_t>((i * 131 + c.rank()) & 0xff);
    }
    c.send(big, peer, 4);
    const auto got = c.recv<std::vector<std::uint8_t>>(peer, 4);
    ASSERT_EQ(got.size(), big.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], static_cast<std::uint8_t>((i * 131 + peer) & 0xff))
          << "corrupt spill byte at offset " << i;
    }
    c.barrier();
  });
}

TEST(Shm, RankFailurePropagatesWithoutDeadlock) {
  try {
    sim::run(on_backend(tp::backend_kind::shm, 4), [](sim::comm& c) {
      if (c.rank() == 2) throw std::runtime_error("rank 2 exploded");
      (void)c.recv_bytes(sim::any_source, 0);
    });
    FAIL() << "expected the rank failure to rethrow in the parent";
  } catch (const ygm::error& e) {
    EXPECT_NE(std::string(e.what()).find("rank 2 exploded"),
              std::string::npos);
  }
}

TEST(Shm, SingleRankWorld) {
  sim::run(on_backend(tp::backend_kind::shm, 1), [](sim::comm& c) {
    c.barrier();
    c.send(41, 0, 0);
    EXPECT_EQ(c.recv<int>(0, 0), 41);
    EXPECT_EQ(c.allreduce_sum(7), 7u);
  });
}

// ------------------------------------- ledger + reduced chaos, all backends

ygm::core::trial_config reduced_trial(std::uint64_t seed) {
  ygm::core::trial_config t;
  t.seed = seed;
  t.scheme = ygm::routing::scheme_kind::no_route;
  t.nodes = 2;
  t.cores = 2;
  t.capacity = 256;
  t.msgs_per_rank = 24;
  t.bcasts_per_rank = 2;
  t.epochs = 2;
  t.chaos = (seed % 2) == 0 ? sim::chaos_config::light(seed)
                            : sim::chaos_config::heavy(seed);
  return t;
}

template <template <class> class MailboxT>
std::vector<std::string> sweep_on(tp::backend_kind backend,
                                  const ygm::core::trial_config& t) {
  sim::run_options opts;
  opts.nranks = t.num_ranks();
  opts.backend = backend;
  opts.chaos = t.chaos;
  const auto blobs = sim::run_collect(opts, [&t](sim::comm& c) {
    const auto local = ygm::core::run_chaos_trial<MailboxT>(c, t);
    auto out = std::vector<std::byte>{};
    ygm::ser::append_bytes(local, out);
    return out;
  });
  std::vector<std::string> all;
  for (const auto& b : blobs) {
    auto local =
        ygm::ser::from_bytes<std::vector<std::string>>({b.data(), b.size()});
    all.insert(all.end(), local.begin(), local.end());
  }
  return all;
}

class LedgerSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LedgerSweep, InprocHoldsInvariants) {
  const auto t = reduced_trial(GetParam());
  const auto v = sweep_on<ygm::core::mailbox>(tp::backend_kind::inproc, t);
  EXPECT_TRUE(v.empty()) << t.describe() << "\nfirst violation: " << v.front();
}

TEST_P(LedgerSweep, SocketHoldsInvariants) {
  const auto t = reduced_trial(GetParam());
  const auto v = sweep_on<ygm::core::mailbox>(tp::backend_kind::socket, t);
  EXPECT_TRUE(v.empty()) << t.describe() << "\nfirst violation: " << v.front();
}

TEST_P(LedgerSweep, ShmHoldsInvariants) {
  const auto t = reduced_trial(GetParam());
  const auto v = sweep_on<ygm::core::mailbox>(tp::backend_kind::shm, t);
  EXPECT_TRUE(v.empty()) << t.describe() << "\nfirst violation: " << v.front();
}

// The hybrid mailbox's zero-copy node-local handoff cannot exist across
// processes; on the socket backend it must degrade to serializing every hop
// while holding the same delivery invariants. NLNR exercises the node-local
// pivots that the fallback reroutes through coalescing buffers.
TEST_P(LedgerSweep, SocketHybridSerializingFallbackHoldsInvariants) {
  auto t = reduced_trial(GetParam());
  t.scheme = ygm::routing::scheme_kind::nlnr;
  const auto v =
      sweep_on<ygm::core::hybrid_mailbox>(tp::backend_kind::socket, t);
  EXPECT_TRUE(v.empty()) << t.describe() << "\nfirst violation: " << v.front();
}

// On shm the hybrid regains a node-local fast path (per-record direct
// messages over the node_local_map capability); the same NLNR trials must
// hold the same invariants through it.
TEST_P(LedgerSweep, ShmHybridDirectPathHoldsInvariants) {
  auto t = reduced_trial(GetParam());
  t.scheme = ygm::routing::scheme_kind::nlnr;
  const auto v = sweep_on<ygm::core::hybrid_mailbox>(tp::backend_kind::shm, t);
  EXPECT_TRUE(v.empty()) << t.describe() << "\nfirst violation: " << v.front();
}

INSTANTIATE_TEST_SUITE_P(Seeds, LedgerSweep, ::testing::Values(2u, 3u));

// ------------------------------------------------- cross-backend parity

// One rank's digest of everything its mailbox delivered: count plus an
// order-independent content hash (deliveries may interleave differently
// per backend; the multiset of delivered messages must not).
std::vector<std::byte> parity_workload(sim::comm& c, std::uint64_t seed) {
  const ygm::routing::topology topo(2, 2);
  ygm::core::comm_world world(c, topo,
                              ygm::routing::scheme_kind::node_local);
  std::uint64_t count = 0;
  std::uint64_t hash = 0;
  ygm::core::mailbox<ygm::core::probe_msg> mb(
      world,
      [&](const ygm::core::probe_msg& m) {
        std::uint64_t byte_sum = 0;
        for (const auto b : m.filler) byte_sum += b;
        ++count;
        hash += ygm::splitmix64(m.origin ^ ygm::splitmix64(m.kind) ^
                                ygm::splitmix64(m.seq + 1) ^
                                ygm::splitmix64(byte_sum + m.filler.size()));
      },
      256);

  ygm::core::delivery_ledger ledger(c.rank(), c.size());
  ygm::xoshiro256 rng(ygm::splitmix64(seed) ^
                      static_cast<std::uint64_t>(c.rank()));
  for (int i = 0; i < 48; ++i) {
    const int dest =
        static_cast<int>(rng.below(static_cast<std::uint64_t>(c.size())));
    mb.send(dest, ledger.make_p2p(dest, static_cast<std::size_t>(rng.below(40))));
    if (rng.below(3) == 0) mb.poll();
  }
  for (int b = 0; b < 3; ++b) {
    mb.send_bcast(ledger.make_bcast(static_cast<std::size_t>(rng.below(24))));
  }
  mb.wait_empty();
  c.barrier();

  auto out = std::vector<std::byte>{};
  ygm::ser::append_bytes(std::pair<std::uint64_t, std::uint64_t>{count, hash},
                         out);
  return out;
}

TEST(Parity, SameSeededWorkloadSameLedgerOnAllBackends) {
  const std::uint64_t seed = 20260807;
  const auto digest_on = [&](tp::backend_kind k) {
    return sim::run_collect(on_backend(k, 4), [&](sim::comm& c) {
      return parity_workload(c, seed);
    });
  };
  const auto a = digest_on(tp::backend_kind::inproc);
  for (const auto k : {tp::backend_kind::socket, tp::backend_kind::shm}) {
    const auto b = digest_on(k);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t r = 0; r < a.size(); ++r) {
      const auto da =
          ygm::ser::from_bytes<std::pair<std::uint64_t, std::uint64_t>>(
              {a[r].data(), a[r].size()});
      const auto db =
          ygm::ser::from_bytes<std::pair<std::uint64_t, std::uint64_t>>(
              {b[r].data(), b[r].size()});
      EXPECT_EQ(da.first, db.first)
          << "delivery count diverged at rank " << r << " on "
          << tp::to_string(k);
      EXPECT_EQ(da.second, db.second)
          << "content hash diverged at rank " << r << " on "
          << tp::to_string(k);
      EXPECT_GT(da.first, 0u) << "rank " << r << " delivered nothing";
    }
  }
}

// ---------------------------------------------- telemetry per backend lane

TEST(Telemetry, ProbeCountersPublishedPerBackendLane) {
  tel::session session;
  tel::set_global(&session);

  sim::run_options opts = on_backend(tp::backend_kind::inproc, 2);
  opts.chaos = sim::chaos_config::heavy(11);  // probe misses active
  sim::run(opts, [](sim::comm& c) {
    const int peer = c.rank() ^ 1;
    // Enough probe rounds that the 30% deterministic miss stream is
    // guaranteed to fire at least once.
    for (int i = 0; i < 32; ++i) {
      c.send(7 + i, peer, 1);
      while (!c.iprobe(peer, 1)) {
      }
      EXPECT_EQ(c.recv<int>(peer, 1), 7 + i);
    }
  });
  tel::set_global(nullptr);

  const auto m = session.merged_metrics();
  EXPECT_GT(m.counters().at("transport.inproc.posts"), 0u);
  EXPECT_GT(m.counters().at("transport.inproc.post_bytes"), 0u);
  EXPECT_GT(m.counters().at("transport.inproc.iprobe_calls"), 0u);
  EXPECT_GT(m.counters().at("transport.inproc.iprobe_draws"), 0u);
  // heavy chaos injects probe misses; the loop above retries through them.
  EXPECT_GT(m.counters().at("transport.inproc.iprobe_misses"), 0u);
}

TEST(Telemetry, SocketLaneShipsAcrossProcesses) {
  tel::session session;
  tel::set_global(&session);
  sim::run(on_backend(tp::backend_kind::socket, 3), [](sim::comm& c) {
    tel::count("test.sockets.child_counter", 5);
    c.send(c.rank(), (c.rank() + 1) % c.size(), 2);
    (void)c.recv<int>(sim::any_source, 2);
    c.barrier();
  });
  tel::set_global(nullptr);

  const auto m = session.merged_metrics();
  // Child-recorded metrics arrive in the parent session...
  EXPECT_EQ(m.counters().at("test.sockets.child_counter"), 15u);
  // ...as do the endpoint's own transport counters, wire stats included.
  EXPECT_GT(m.counters().at("transport.socket.posts"), 0u);
  EXPECT_GT(m.counters().at("transport.socket.wire_tx_bytes"), 0u);
  EXPECT_GT(m.counters().at("transport.socket.wire_rx_bytes"), 0u);
  EXPECT_GT(m.counters().at("transport.socket.wire_sendmsg_calls"), 0u);
  EXPECT_GT(m.counters().at("mpi.sends"), 0u);
}

TEST(Telemetry, ShmLaneShipsAcrossProcesses) {
  tel::session session;
  tel::set_global(&session);
  sim::run(on_backend(tp::backend_kind::shm, 3), [](sim::comm& c) {
    tel::count("test.shm.child_counter", 5);
    c.send(c.rank(), (c.rank() + 1) % c.size(), 2);
    (void)c.recv<int>(sim::any_source, 2);
    c.barrier();
  });
  tel::set_global(nullptr);

  const auto m = session.merged_metrics();
  EXPECT_EQ(m.counters().at("test.shm.child_counter"), 15u);
  // The endpoint's teardown publishes ring traffic onto the rank lane,
  // which must ship to the parent like any other counter.
  EXPECT_GT(m.counters().at("transport.shm.posts"), 0u);
  EXPECT_GT(m.counters().at("transport.shm.ring_tx_bytes"), 0u);
  EXPECT_GT(m.counters().at("transport.shm.ring_rx_bytes"), 0u);
  EXPECT_GT(m.counters().at("mpi.sends"), 0u);
}

// The hybrid mailbox must actually take the direct node-local path on shm
// (capability node_local_map), not silently fall back to coalescing.
TEST(Telemetry, ShmHybridUsesDirectLocalPath) {
  tel::session session;
  tel::set_global(&session);
  sim::run(on_backend(tp::backend_kind::shm, 4), [](sim::comm& c) {
    const ygm::routing::topology topo(2, 2);
    ygm::core::comm_world world(c, topo,
                                ygm::routing::scheme_kind::node_local);
    int got = 0;
    ygm::core::hybrid_mailbox<int> mb(world, [&](const int& v) { got += v; },
                                      256);
    // Node-local peer under topology(2,2): rank^1 shares this rank's node.
    for (int i = 0; i < 16; ++i) mb.send(c.rank() ^ 1, 1);
    mb.wait_empty();
    EXPECT_EQ(got, 16);
    c.barrier();
  });
  tel::set_global(nullptr);

  const auto m = session.merged_metrics();
  EXPECT_GE(m.counters().at("hybrid.local_direct"), 4u * 16u);
  // Nothing coalesced: every hop in this workload was node-local.
  EXPECT_EQ(m.counters().count("hybrid.shared_handoffs")
                ? m.counters().at("hybrid.shared_handoffs")
                : 0u,
            0u);
}

}  // namespace
