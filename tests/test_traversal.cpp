// Tests for the traversal kernels (BFS, SSSP) and the disjoint-set
// connected components — the Graph500-style workloads the paper cites as
// YGM's production use (§I) plus the Shiloach-Vishkin-style CC it suggests
// (§V-B).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "apps/bfs.hpp"
#include "apps/cc_disjoint_set.hpp"
#include "apps/connected_components.hpp"
#include "apps/sssp.hpp"
#include "core/ygm.hpp"
#include "graph/rmat.hpp"

namespace {

namespace sim = ygm::mpisim;
using ygm::core::comm_world;
using ygm::graph::edge;
using ygm::graph::vertex_id;
using ygm::routing::scheme_kind;
using ygm::routing::topology;

std::vector<edge> rmat_edges(int scale, std::uint64_t count,
                             std::uint64_t seed) {
  const ygm::graph::rmat_generator g(
      scale, count, ygm::graph::rmat_params::graph500(), seed, 0, 1);
  std::vector<edge> edges;
  g.for_each([&](const edge& e) { edges.push_back(e); });
  return edges;
}

std::vector<edge> slice(const std::vector<edge>& all, int rank, int nranks) {
  std::vector<edge> mine;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (static_cast<int>(i % static_cast<std::size_t>(nranks)) == rank) {
      mine.push_back(all[i]);
    }
  }
  return mine;
}

// -------------------------------------------------------------------- BFS

class TraversalSchemes : public ::testing::TestWithParam<scheme_kind> {};

TEST_P(TraversalSchemes, BfsLevelsMatchSerialOracle) {
  const topology topo(2, 4);
  const int scale = 7;
  const vertex_id n = vertex_id{1} << scale;
  const auto all = rmat_edges(scale, 1200, 42);
  const vertex_id root = all.front().src;
  const auto oracle = ygm::apps::bfs_reference(n, all, root);

  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, GetParam());
    const ygm::apps::local_adjacency adj(
        world, slice(all, c.rank(), c.size()), n, /*weighted=*/false);
    const auto res = ygm::apps::bfs(world, adj, root, /*capacity=*/512);
    const auto& part = adj.partition();
    for (std::uint64_t j = 0; j < res.local_levels.size(); ++j) {
      EXPECT_EQ(res.local_levels[j], oracle[part.global_id(c.rank(), j)])
          << "vertex " << part.global_id(c.rank(), j);
    }
  });
}

TEST_P(TraversalSchemes, SsspDistancesMatchDijkstra) {
  const topology topo(2, 3);
  const int scale = 6;
  const vertex_id n = vertex_id{1} << scale;
  const auto all = rmat_edges(scale, 500, 77);
  const vertex_id root = all.front().dst;
  const auto oracle = ygm::apps::sssp_reference(n, all, root);

  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, GetParam());
    const ygm::apps::local_adjacency adj(
        world, slice(all, c.rank(), c.size()), n, /*weighted=*/true);
    const auto res = ygm::apps::sssp(world, adj, root, /*capacity=*/512);
    const auto& part = adj.partition();
    for (std::uint64_t j = 0; j < res.local_distances.size(); ++j) {
      EXPECT_EQ(res.local_distances[j], oracle[part.global_id(c.rank(), j)])
          << "vertex " << part.global_id(c.rank(), j);
    }
  });
}

TEST_P(TraversalSchemes, DisjointSetCcMatchesLabelPropagation) {
  const topology topo(2, 4);
  const int scale = 7;
  const vertex_id n = vertex_id{1} << scale;
  const auto all = rmat_edges(scale, 900, 11);
  const auto oracle = ygm::apps::connected_components_reference(n, all);

  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, GetParam());
    const auto mine = slice(all, c.rank(), c.size());

    // Shiloach-Vishkin-style (disjoint set).
    const auto ds = ygm::apps::connected_components_disjoint_set(
        world, mine, n, /*capacity=*/512);
    // Label propagation (paper's implementation).
    const auto lp = ygm::apps::connected_components(world, mine, n, {},
                                                    /*capacity=*/512);

    const ygm::graph::round_robin_partition part{c.size()};
    ASSERT_EQ(ds.local_labels.size(), lp.local_labels.size());
    for (std::uint64_t j = 0; j < ds.local_labels.size(); ++j) {
      const vertex_id id = part.global_id(c.rank(), j);
      EXPECT_EQ(ds.local_labels[j], oracle[id]) << "vertex " << id;
      EXPECT_EQ(lp.local_labels[j], oracle[id]) << "vertex " << id;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, TraversalSchemes,
    ::testing::ValuesIn(std::vector<scheme_kind>(
        std::begin(ygm::routing::all_schemes),
        std::end(ygm::routing::all_schemes))),
    [](const ::testing::TestParamInfo<scheme_kind>& info) {
      return std::string(ygm::routing::to_string(info.param));
    });

// --------------------------------------------------------- special shapes

TEST(Bfs, UnreachedVerticesStayAtSentinel) {
  // Two disconnected cliques; BFS from one must not touch the other.
  std::vector<edge> edges;
  for (vertex_id a = 0; a < 5; ++a) {
    for (vertex_id b = a + 1; b < 5; ++b) edges.push_back({a, b});
  }
  for (vertex_id a = 8; a < 12; ++a) {
    for (vertex_id b = a + 1; b < 12; ++b) edges.push_back({a, b});
  }
  const vertex_id n = 16;
  sim::run(4, [&](sim::comm& c) {
    comm_world world(c, 2, scheme_kind::node_remote);
    const ygm::apps::local_adjacency adj(world, slice(edges, c.rank(), 4), n,
                                         false);
    const auto res = ygm::apps::bfs(world, adj, /*root=*/0);
    const auto& part = adj.partition();
    for (std::uint64_t j = 0; j < res.local_levels.size(); ++j) {
      const vertex_id id = part.global_id(c.rank(), j);
      if (id < 5) {
        EXPECT_EQ(res.local_levels[j], id == 0 ? 0u : 1u);
      } else {
        EXPECT_EQ(res.local_levels[j], ygm::apps::bfs_unreached);
      }
    }
  });
}

TEST(Bfs, PathGraphLevelsAreDistances) {
  const vertex_id n = 30;
  std::vector<edge> edges;
  for (vertex_id v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1});
  sim::run(6, [&](sim::comm& c) {
    comm_world world(c, 3, scheme_kind::nlnr);
    const ygm::apps::local_adjacency adj(world, slice(edges, c.rank(), 6), n,
                                         false);
    const auto res = ygm::apps::bfs(world, adj, /*root=*/0, 64);
    const auto& part = adj.partition();
    for (std::uint64_t j = 0; j < res.local_levels.size(); ++j) {
      EXPECT_EQ(res.local_levels[j], part.global_id(c.rank(), j));
    }
  });
}

TEST(Sssp, PrefersLongerHopCountWhenCheaper) {
  // Triangle 0-1-2 plus a heavy direct edge: force a two-hop shortest path.
  // Weights are the deterministic synthetic ones; find them first.
  const std::uint32_t w01 = ygm::apps::local_adjacency::weight_of(0, 1);
  const std::uint32_t w12 = ygm::apps::local_adjacency::weight_of(1, 2);
  const std::uint32_t w02 = ygm::apps::local_adjacency::weight_of(0, 2);
  const std::uint64_t expect = std::min<std::uint64_t>(
      w02, static_cast<std::uint64_t>(w01) + w12);

  std::vector<edge> edges{{0, 1}, {1, 2}, {0, 2}};
  sim::run(3, [&](sim::comm& c) {
    comm_world world(c, 1, scheme_kind::no_route);
    const ygm::apps::local_adjacency adj(world, slice(edges, c.rank(), 3), 3,
                                         true);
    const auto res = ygm::apps::sssp(world, adj, 0);
    const auto& part = adj.partition();
    for (std::uint64_t j = 0; j < res.local_distances.size(); ++j) {
      if (part.global_id(c.rank(), j) == 2) {
        EXPECT_EQ(res.local_distances[j], expect);
      }
    }
  });
}

TEST(Traversal, RelaxationCountsAreBoundedAndReported) {
  // Label-correcting BFS may relabel, but the total relaxations can never
  // exceed total messages delivered, and must be at least the number of
  // reached vertices.
  const int scale = 6;
  const vertex_id n = vertex_id{1} << scale;
  const auto all = rmat_edges(scale, 400, 5);
  const auto oracle = ygm::apps::bfs_reference(n, all, all.front().src);
  std::uint64_t reached = 0;
  for (const auto l : oracle) {
    if (l != ygm::apps::bfs_unreached) ++reached;
  }
  sim::run(4, [&](sim::comm& c) {
    comm_world world(c, 2, scheme_kind::node_local);
    const ygm::apps::local_adjacency adj(world, slice(all, c.rank(), 4), n,
                                         false);
    const auto res = ygm::apps::bfs(world, adj, all.front().src, 256);
    const auto total_relax = c.allreduce(res.relaxations, sim::op_sum{});
    EXPECT_GE(total_relax, reached);
    const auto delivered = c.allreduce(res.stats.deliveries, sim::op_sum{});
    EXPECT_LE(total_relax, delivered);
  });
}

}  // namespace
