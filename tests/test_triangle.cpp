// Tests for distributed triangle counting (apps/triangle_count.hpp).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/triangle_count.hpp"
#include "core/ygm.hpp"
#include "graph/rmat.hpp"

namespace {

namespace sim = ygm::mpisim;
using ygm::core::comm_world;
using ygm::graph::edge;
using ygm::graph::vertex_id;
using ygm::routing::scheme_kind;
using ygm::routing::topology;

std::vector<edge> slice(const std::vector<edge>& all, int rank, int nranks) {
  std::vector<edge> mine;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (static_cast<int>(i % static_cast<std::size_t>(nranks)) == rank) {
      mine.push_back(all[i]);
    }
  }
  return mine;
}

std::uint64_t run_distributed(const topology& topo, scheme_kind kind,
                              const std::vector<edge>& all, vertex_id n) {
  std::uint64_t triangles = 0;
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, kind);
    const auto res = ygm::apps::triangle_count(
        world, slice(all, c.rank(), c.size()), n, 512);
    if (c.rank() == 0) triangles = res.triangles;
  });
  return triangles;
}

// ---------------------------------------------------------- known shapes

TEST(TriangleCount, SingleTriangle) {
  const std::vector<edge> tri{{0, 1}, {1, 2}, {2, 0}};
  EXPECT_EQ(run_distributed(topology(2, 2), scheme_kind::node_remote, tri, 3),
            1u);
}

TEST(TriangleCount, PathHasNoTriangles) {
  std::vector<edge> path;
  for (vertex_id v = 0; v + 1 < 20; ++v) path.push_back({v, v + 1});
  EXPECT_EQ(run_distributed(topology(2, 2), scheme_kind::nlnr, path, 20), 0u);
}

TEST(TriangleCount, CompleteGraphHasNChoose3) {
  const vertex_id n = 10;
  std::vector<edge> k;
  for (vertex_id a = 0; a < n; ++a) {
    for (vertex_id b = a + 1; b < n; ++b) k.push_back({a, b});
  }
  // C(10,3) = 120.
  EXPECT_EQ(run_distributed(topology(2, 4), scheme_kind::node_local, k, n),
            120u);
}

TEST(TriangleCount, ParallelEdgesAndSelfLoopsAreIgnored) {
  const std::vector<edge> messy{{0, 1}, {1, 0}, {0, 1}, {1, 2},
                                {2, 0}, {2, 2}, {0, 0}};
  EXPECT_EQ(run_distributed(topology(1, 4), scheme_kind::no_route, messy, 3),
            1u);
}

// ----------------------------------------------------------- random graphs

class TriangleSchemes : public ::testing::TestWithParam<scheme_kind> {};

TEST_P(TriangleSchemes, MatchesSerialOracleOnRmat) {
  const int scale = 7;
  const vertex_id n = vertex_id{1} << scale;
  std::vector<edge> all;
  ygm::graph::rmat_generator g(scale, 1500,
                               ygm::graph::rmat_params::graph500(), 12, 0, 1);
  g.for_each([&](const edge& e) { all.push_back(e); });
  const auto oracle = ygm::apps::triangle_count_reference(n, all);
  EXPECT_GT(oracle, 0u) << "test graph should contain triangles";

  EXPECT_EQ(run_distributed(topology(2, 3), GetParam(), all, n), oracle);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, TriangleSchemes,
    ::testing::ValuesIn(std::vector<scheme_kind>(
        std::begin(ygm::routing::all_schemes),
        std::end(ygm::routing::all_schemes))),
    [](const ::testing::TestParamInfo<scheme_kind>& info) {
      return std::string(ygm::routing::to_string(info.param));
    });

TEST(TriangleCount, WedgeCountMatchesDegreeFormula) {
  // wedges = sum over u of C(deg+(u), 2), computable from the oracle's
  // oriented adjacency.
  const vertex_id n = 64;
  std::vector<edge> all;
  ygm::graph::rmat_generator g(6, 400, ygm::graph::rmat_params::uniform(), 2,
                               0, 1);
  g.for_each([&](const edge& e) { all.push_back(e); });

  std::vector<std::set<vertex_id>> adj(n);
  for (const auto& e : all) {
    if (e.src == e.dst) continue;
    adj[std::min(e.src, e.dst)].insert(std::max(e.src, e.dst));
  }
  std::uint64_t expect_wedges = 0;
  for (const auto& nbrs : adj) {
    expect_wedges += nbrs.size() * (nbrs.size() - 1) / 2;
  }

  sim::run(4, [&](sim::comm& c) {
    comm_world world(c, 2, scheme_kind::node_remote);
    const auto res = ygm::apps::triangle_count(
        world, slice(all, c.rank(), c.size()), n, 256);
    EXPECT_EQ(res.wedges_checked, expect_wedges);
  });
}

}  // namespace
