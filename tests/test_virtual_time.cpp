// Tests for virtual-time execution (core/comm_world.hpp + mailbox): an
// executed run on rank-threads also yields the causally consistent time the
// same run would take on the modeled cluster — the bridge between
// [executed] and [model] bench rows.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/ygm.hpp"

namespace {

namespace sim = ygm::mpisim;
using ygm::core::comm_world;
using ygm::core::mailbox;
using ygm::routing::router;
using ygm::routing::scheme_kind;
using ygm::routing::topology;

double run_timed_uniform(const topology& topo, scheme_kind kind, int msgs,
                         std::size_t capacity) {
  double elapsed = 0;
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, kind);
    world.attach_virtual_network(ygm::net::network_params::quartz_like());
    mailbox<std::uint64_t> mb(world, [](const std::uint64_t&) {}, capacity);
    ygm::xoshiro256 rng(1 + static_cast<std::uint64_t>(c.rank()));
    for (int i = 0; i < msgs; ++i) {
      int dest = static_cast<int>(
          rng.below(static_cast<std::uint64_t>(c.size() - 1)));
      if (dest >= c.rank()) ++dest;
      mb.send(dest, rng());
    }
    mb.wait_empty();
    const double t = world.virtual_elapsed();
    if (c.rank() == 0) elapsed = t;
  });
  return elapsed;
}

TEST(VirtualTime, UntimedWorldStaysAtZero) {
  sim::run(4, [](sim::comm& c) {
    comm_world world(c, 2, scheme_kind::node_remote);
    EXPECT_FALSE(world.timed());
    mailbox<int> mb(world, [](const int&) {});
    for (int d = 0; d < c.size(); ++d) {
      if (d != c.rank()) mb.send(d, 1);
    }
    mb.wait_empty();
    EXPECT_EQ(world.virtual_now(), 0.0);
    EXPECT_EQ(world.virtual_elapsed(), 0.0);
  });
}

TEST(VirtualTime, TimedRunAccumulatesPositiveTime) {
  const double t = run_timed_uniform(topology(2, 2), scheme_kind::nlnr, 200,
                                     512);
  EXPECT_GT(t, 0.0);
  EXPECT_LT(t, 1.0);  // a few hundred tiny messages, not seconds
}

TEST(VirtualTime, MoreTrafficTakesLonger) {
  const topology topo(2, 4);
  const double small =
      run_timed_uniform(topo, scheme_kind::node_remote, 200, 1024);
  const double large =
      run_timed_uniform(topo, scheme_kind::node_remote, 4000, 1024);
  EXPECT_GT(large, small);
}

TEST(VirtualTime, ArrivalStampsEnforceCausality) {
  // A relay chain 0 -> 1 -> 2 across nodes: rank 2's clock must include at
  // least two remote transfers plus handling, and each relay's clock must
  // be at least the upstream sender's.
  const topology topo(3, 1);
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, scheme_kind::no_route);
    world.attach_virtual_network(ygm::net::network_params::quartz_like());
    const auto& np = world.virtual_network();

    std::vector<double> clock_at_delivery(1, -1.0);
    mailbox<int>* mbp = nullptr;
    mailbox<int> mb(
        world,
        [&](const int& hops_left) {
          clock_at_delivery[0] = world.virtual_now();
          if (hops_left > 0) mbp->send(c.rank() + 1, hops_left - 1);
        },
        64);
    mbp = &mb;
    if (c.rank() == 0) mb.send(1, 1);
    mb.wait_empty();

    const double min_transfer = np.remote.transfer_time(16);
    if (c.rank() == 1) {
      EXPECT_GE(clock_at_delivery[0], min_transfer);
    }
    if (c.rank() == 2) {
      // Two sequential remote transfers on the causal path.
      EXPECT_GE(clock_at_delivery[0], 2 * min_transfer);
    }
    const double total = world.virtual_elapsed();
    EXPECT_GE(total, 2 * min_transfer);
  });
}

TEST(VirtualTime, SchemeOrderingMatchesEvaluatorAtSmallScale) {
  // For many tiny messages under a small capacity, NoRoute's
  // latency-dominated packets must cost more simulated time than
  // NodeRemote's coalesced ones — the executed counterpart of the
  // evaluator's packet-size argument.
  const topology topo(4, 4);
  const double none =
      run_timed_uniform(topo, scheme_kind::no_route, 3000, 4096);
  const double nr =
      run_timed_uniform(topo, scheme_kind::node_remote, 3000, 4096);
  EXPECT_GT(none, nr);
}

TEST(VirtualTime, AgreesWithEvaluatorWithinSmallFactor) {
  const topology topo(4, 4);
  const int msgs = 4000;
  const std::size_t capacity = 2048;
  const double executed =
      run_timed_uniform(topo, scheme_kind::node_remote, msgs, capacity);

  ygm::net::traffic_model tm;
  tm.p2p_bytes = msgs * 10.0;  // 8-byte payload + framing
  tm.p2p_msg_bytes = 10.0;
  const auto predicted = ygm::net::evaluate(
      router(scheme_kind::node_remote, topo),
      ygm::net::network_params::quartz_like(), capacity, tm);

  // The evaluator reports the per-core average; the virtual clock reports
  // the causal critical path, which is larger but of the same scale.
  EXPECT_GT(executed, 0.5 * predicted.total_s);
  EXPECT_LT(executed, 20 * predicted.total_s);
}

}  // namespace
// (appended) hybrid mailbox and containers under virtual time

#include "containers/counting_set.hpp"
#include "core/hybrid_mailbox.hpp"

namespace {

TEST(VirtualTime, HybridMailboxChargesLocalAndRemote) {
  const topology topo(2, 2);
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, scheme_kind::node_remote);
    world.attach_virtual_network(ygm::net::network_params::quartz_like());
    ygm::core::hybrid_mailbox<std::uint64_t> mb(
        world, [](const std::uint64_t&) {}, 256);
    for (int d = 0; d < c.size(); ++d) {
      if (d != c.rank()) mb.send(d, 7);
    }
    mb.wait_empty();
    const double t = world.virtual_elapsed();
    EXPECT_GT(t, 0.0);
    // At least one remote transfer happened on the critical path.
    EXPECT_GE(t, ygm::net::network_params::quartz_like()
                     .remote.transfer_time(16));
  });
}

TEST(VirtualTime, HybridZeroCopyLocalPathIsCheaperThanPlain) {
  // Single node, local-only traffic: the hybrid charges one shared-memory
  // transfer per record; the plain mailbox additionally pays per-packet
  // serialization hops but coalesces — both must advance time, and both
  // must stay in the local-link cost regime (far below any wire transfer
  // of the same volume).
  const topology topo(1, 4);
  const auto np = ygm::net::network_params::quartz_like();
  for (const bool hybrid : {false, true}) {
    sim::run(topo.num_ranks(), [&](sim::comm& c) {
      comm_world world(c, topo, scheme_kind::node_local);
      world.attach_virtual_network(np);
      const auto drive = [&](auto& mb) {
        for (int i = 0; i < 100; ++i) {
          mb.send((c.rank() + 1) % c.size(), std::uint64_t{1});
        }
        mb.wait_empty();
      };
      if (hybrid) {
        ygm::core::hybrid_mailbox<std::uint64_t> mb(
            world, [](const std::uint64_t&) {}, 128);
        drive(mb);
      } else {
        mailbox<std::uint64_t> mb(world, [](const std::uint64_t&) {}, 128);
        drive(mb);
      }
      const double t = world.virtual_elapsed();
      EXPECT_GT(t, 0.0);
      const double wire_equiv =
          np.remote.transfer_time(100.0 * 10) * topo.num_ranks();
      EXPECT_LT(t, wire_equiv * 10);
    });
  }
}

TEST(VirtualTime, ContainersAccrueVirtualTime) {
  const topology topo(2, 2);
  sim::run(topo.num_ranks(), [&](sim::comm& c) {
    comm_world world(c, topo, scheme_kind::nlnr);
    world.attach_virtual_network(ygm::net::network_params::quartz_like());
    ygm::container::counting_set<std::uint64_t> cs(world, 256);
    for (int i = 0; i < 200; ++i) {
      cs.async_insert(static_cast<std::uint64_t>(i % 17));
    }
    cs.wait_empty();
    EXPECT_GT(world.virtual_elapsed(), 0.0);
    EXPECT_EQ(cs.global_total(), 200u * static_cast<std::uint64_t>(c.size()));
  });
}

}  // namespace
