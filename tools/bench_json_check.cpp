// Validator for the --bench-json reports the bench harness emits (see
// bench/bench_util.hpp). The `-L perf` ctest smoke runs perf_hotpath --tiny
// with --bench-json and then parses the file back through this tool, so a
// report that silently stopped being machine-readable fails CI instead of
// failing whoever consumes BENCH_hotpath.json next.
//
// Usage: bench_json_check [--bench <name>] [--require-metric <substr>] <file>
//   --bench <name>            assert the report's "bench" field
//   --require-metric <substr> assert some section has a metric whose key
//                             contains <substr> with a finite value > 0
//                             (repeatable)
// Exit 0 on success, 1 on a failed check or malformed report.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/mini_json.hpp"

namespace {

using ygm::common::json_value;

bool fail(const std::string& why) {
  std::fprintf(stderr, "bench_json_check: FAIL: %s\n", why.c_str());
  return false;
}

bool check(const json_value& root, const std::string& want_bench,
           const std::vector<std::string>& want_metrics) {
  if (!root.is_object()) return fail("top level is not an object");
  const auto& top = root.obj();
  const auto bench_it = top.find("bench");
  if (bench_it == top.end() || !bench_it->second.is_string()) {
    return fail("missing \"bench\" name");
  }
  if (!want_bench.empty() && bench_it->second.str() != want_bench) {
    return fail("bench is \"" + bench_it->second.str() + "\", expected \"" +
                want_bench + "\"");
  }
  const auto sec_it = top.find("sections");
  if (sec_it == top.end() || !sec_it->second.is_array()) {
    return fail("missing \"sections\" array");
  }
  const auto& sections = sec_it->second.arr();
  if (sections.empty()) return fail("report has no sections");

  std::size_t total_rows = 0;
  std::vector<bool> metric_seen(want_metrics.size(), false);
  for (const auto& sec : sections) {
    if (!sec.is_object()) return fail("section is not an object");
    const auto& s = sec.obj();
    const auto tables = s.find("tables");
    if (tables == s.end() || !tables->second.is_array()) {
      return fail("section missing \"tables\"");
    }
    for (const auto& tab : tables->second.arr()) {
      if (!tab.is_object()) return fail("table is not an object");
      const auto& t = tab.obj();
      const auto headers = t.find("headers");
      const auto rows = t.find("rows");
      if (headers == t.end() || !headers->second.is_array() ||
          rows == t.end() || !rows->second.is_array()) {
        return fail("table missing headers/rows");
      }
      const std::size_t ncols = headers->second.arr().size();
      if (ncols == 0) return fail("table has no columns");
      for (const auto& row : rows->second.arr()) {
        if (!row.is_array() || row.arr().size() > ncols) {
          return fail("row shape does not match headers");
        }
        ++total_rows;
      }
    }
    const auto metrics = s.find("metrics");
    if (metrics == s.end() || !metrics->second.is_object()) {
      return fail("section missing \"metrics\"");
    }
    for (const auto& [key, value] : metrics->second.obj()) {
      if (!value.is_number()) return fail("metric \"" + key + "\" not numeric");
      for (std::size_t i = 0; i < want_metrics.size(); ++i) {
        if (key.find(want_metrics[i]) != std::string::npos &&
            std::isfinite(value.num()) && value.num() > 0) {
          metric_seen[i] = true;
        }
      }
    }
  }
  if (total_rows == 0) return fail("no table rows in any section");
  for (std::size_t i = 0; i < want_metrics.size(); ++i) {
    if (!metric_seen[i]) {
      return fail("no positive metric matching \"" + want_metrics[i] + "\"");
    }
  }
  std::printf("bench_json_check: OK (%zu sections, %zu table rows)\n",
              sections.size(), total_rows);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string want_bench;
  std::vector<std::string> want_metrics;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--bench" && i + 1 < argc) {
      want_bench = argv[++i];
    } else if (arg == "--require-metric" && i + 1 < argc) {
      want_metrics.emplace_back(argv[++i]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "usage: bench_json_check [--bench <name>] "
                           "[--require-metric <substr>]... <file>\n");
      return 1;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "bench_json_check: no input file\n");
    return 1;
  }
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_json_check: cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  try {
    const json_value root = ygm::common::json_parser(ss.str()).parse();
    return check(root, want_bench, want_metrics) ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_json_check: parse error: %s\n", e.what());
    return 1;
  }
}
