// stress_ygm: chaos-sweep driver for the YGM runtime (docs/CHAOS.md).
//
// Runs the delivery-invariant trial harness (core/invariants.hpp) over a
// grid of seeds x routing schemes x mailbox implementations x timed mode x
// chaos presets, with machine shape and capacity rotating per seed. Any
// invariant violation prints the complete reproduction recipe and makes the
// process exit nonzero — rerunning with the printed flags replays the exact
// fault pattern.
//
//   stress_ygm --seeds 64                            # the default full sweep
//   stress_ygm --seeds 1 --seed-base 19 --schemes nlnr --mailboxes hybrid
//              --timed on --chaos heavy              # replay one recipe
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include <memory>

#include "core/hybrid_mailbox.hpp"
#include "core/invariants.hpp"
#include "core/launch.hpp"
#include "core/mailbox.hpp"
#include "core/progress.hpp"
#include "mpisim/runtime.hpp"
#include "ser/serialize.hpp"
#include "telemetry/causal.hpp"
#include "telemetry/telemetry.hpp"
#include "transport/endpoint.hpp"

namespace {

namespace sim = ygm::mpisim;
namespace tp = ygm::transport;
using sim::chaos_config;
using ygm::core::run_chaos_trial;
using ygm::core::trial_config;
using ygm::routing::scheme_kind;

struct options {
  std::uint64_t seeds = 64;
  std::uint64_t seed_base = 0;
  std::vector<scheme_kind> schemes{std::begin(ygm::routing::all_schemes),
                                   std::end(ygm::routing::all_schemes)};
  std::vector<bool> hybrids{false, true};
  std::vector<bool> timed_modes{false, true};
  std::vector<std::string> presets{"light", "heavy"};
  std::vector<std::pair<int, int>> topos{{2, 2}, {1, 4}, {4, 2}, {2, 3}};
  std::vector<std::size_t> capacities{1, 24, 96, 65536};
  int msgs = 40;
  int bcasts = 3;
  int epochs = 2;
  // Flood mode (docs/BACKPRESSURE.md): rank 0 additionally hammers the
  // last rank at ~this many bytes/s per epoch; 0 = off.
  std::uint64_t flood_bytes_per_s = 0;
  // Per-destination credit budget override for the sweep; 0 = the resolved
  // default (YGM_CREDIT_BYTES / 1 MiB).
  std::uint64_t credit_bytes = 0;
  // Optional knob overrides (negative = use preset value).
  double delay_prob = -1, miss_prob = -1, stall_prob = -1;
  long delay_ticks = -1, stall_us = -1;
  // Causal-tracing passthrough (docs/TELEMETRY.md §Causal tracing).
  double trace_sample = -1;
  std::string trace_out;
  std::string postmortem_out;
  // Live-telemetry axes (docs/TELEMETRY.md §Live telemetry); -1 = defer to
  // YGM_SAMPLE_MS / YGM_STATUSZ so env-driven sweeps still replay.
  int sample_ms = -1;
  int statusz = -1;
  // Transport backend; unset = YGM_TRANSPORT passthrough (default inproc),
  // so a chaos recipe names its backend either way.
  std::optional<tp::backend_kind> backend;
  // Progress modes to sweep; default polling only (the historical sweep).
  // Engine trials wrap injection in a progress::guard so the engine
  // competes with the rank threads for the same packets.
  std::vector<ygm::progress::mode> progress_modes{
      ygm::progress::mode::polling};
};

[[noreturn]] void usage(int code) {
  std::fprintf(
      code == 0 ? stdout : stderr,
      "usage: stress_ygm [options]\n"
      "  --seeds N            seeds per grid cell (default 64)\n"
      "  --seed-base B        first seed (default 0)\n"
      "  --schemes a,b,..     NoRoute|NodeLocal|NodeRemote|NLNR,\n"
      "                       case-insensitive (default all four)\n"
      "  --mailboxes M        mailbox|hybrid|both (default both)\n"
      "  --timed M            on|off|both (default both)\n"
      "  --chaos M            light|heavy|both (default both)\n"
      "  --backend B          transport backend: inproc|socket|shm (default:\n"
      "                       $YGM_TRANSPORT, else inproc)\n"
      "  --progress M         polling|engine|both (default polling);\n"
      "                       engine starts the dedicated progress thread\n"
      "                       (untimed trials only get real engine help)\n"
      "  --topos NxC,..       machine shapes rotated per seed\n"
      "  --capacities a,b,..  mailbox capacities rotated per seed\n"
      "  --flood B            flood mode: rank 0 also hammers the last rank\n"
      "                       at ~B bytes/s per epoch (hot producer vs slow\n"
      "                       consumer; exercises credit backpressure)\n"
      "  --credit-bytes B     per-destination flow-control budget override\n"
      "                       (default: $YGM_CREDIT_BYTES, else 1 MiB)\n"
      "  --msgs N             p2p messages per rank per epoch (default 40)\n"
      "  --bcasts N           broadcasts per rank per epoch (default 3)\n"
      "  --epochs N           communication epochs per trial (default 2)\n"
      "  --delay-prob P --max-delay-ticks T --iprobe-miss-prob P\n"
      "  --stall-prob P --max-stall-us U\n"
      "                       override individual chaos knobs\n"
      "  --sample-ms N        live time-series sampler period in ms for every\n"
      "                       trial (0 = off; default: $YGM_SAMPLE_MS, else\n"
      "                       100). Chaos with the sampler on is a telemetry\n"
      "                       regression axis, not an invariant change\n"
      "  --statusz            serve the per-process statusz endpoint during\n"
      "                       trials (default: $YGM_STATUSZ, else off)\n"
      "  --trace-sample R     causal-trace sample rate in [0,1] (default 0)\n"
      "  --trace-out F        write a Chrome trace of the whole sweep to F\n"
      "  --postmortem-out F   stall-watchdog flight-recorder dump file\n"
      "                       (arms a 10 s watchdog if none configured)\n");
  std::exit(code);
}

std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const auto comma = s.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

scheme_kind parse_scheme(const std::string& s) {
  auto lower = [](std::string v) {
    for (auto& ch : v) ch = static_cast<char>(std::tolower(ch));
    return v;
  };
  for (auto k : ygm::routing::all_schemes) {
    if (lower(s) == lower(std::string(ygm::routing::to_string(k)))) return k;
  }
  std::fprintf(stderr, "stress_ygm: unknown scheme '%s'\n", s.c_str());
  std::exit(2);
}

std::vector<bool> parse_on_off_both(const std::string& s, const char* flag) {
  if (s == "on") return {true};
  if (s == "off") return {false};
  if (s == "both") return {false, true};
  std::fprintf(stderr, "stress_ygm: %s must be on|off|both, got '%s'\n", flag,
               s.c_str());
  std::exit(2);
}

options parse(int argc, char** argv) {
  options o;
  auto need = [&](int i) -> std::string {
    if (i + 1 >= argc) usage(2);
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "-h" || a == "--help") usage(0);
    else if (a == "--seeds") o.seeds = std::strtoull(need(i++).c_str(), nullptr, 10);
    else if (a == "--seed-base") o.seed_base = std::strtoull(need(i++).c_str(), nullptr, 10);
    else if (a == "--flood") o.flood_bytes_per_s = std::strtoull(need(i++).c_str(), nullptr, 10);
    else if (a == "--credit-bytes") o.credit_bytes = std::strtoull(need(i++).c_str(), nullptr, 10);
    else if (a == "--msgs") o.msgs = std::atoi(need(i++).c_str());
    else if (a == "--bcasts") o.bcasts = std::atoi(need(i++).c_str());
    else if (a == "--epochs") o.epochs = std::atoi(need(i++).c_str());
    else if (a == "--schemes") {
      o.schemes.clear();
      for (const auto& s : split_list(need(i++))) o.schemes.push_back(parse_scheme(s));
    } else if (a == "--mailboxes") {
      const auto v = need(i++);
      if (v == "mailbox") o.hybrids = {false};
      else if (v == "hybrid") o.hybrids = {true};
      else if (v == "both") o.hybrids = {false, true};
      else usage(2);
    } else if (a == "--backend" || a.rfind("--backend=", 0) == 0) {
      const auto v = a == "--backend" ? need(i++) : a.substr(10);
      const auto k = tp::backend_from_name(v);
      if (!k) {
        std::fprintf(stderr, "stress_ygm: unknown backend '%s'\n", v.c_str());
        std::exit(2);
      }
      o.backend = *k;
    } else if (a == "--timed") {
      o.timed_modes = parse_on_off_both(need(i++), "--timed");
    } else if (a == "--progress" || a.rfind("--progress=", 0) == 0) {
      const auto v = a == "--progress" ? need(i++) : a.substr(11);
      using ygm::progress::mode;
      if (v == "both") {
        o.progress_modes = {mode::polling, mode::engine};
      } else if (const auto m = ygm::progress::mode_from_name(v)) {
        o.progress_modes = {*m};
      } else {
        std::fprintf(stderr,
                     "stress_ygm: --progress must be polling|engine|both, "
                     "got '%s'\n",
                     v.c_str());
        std::exit(2);
      }
    } else if (a == "--chaos") {
      const auto v = need(i++);
      if (v == "light" || v == "heavy") o.presets = {v};
      else if (v == "both") o.presets = {"light", "heavy"};
      else usage(2);
    } else if (a == "--topos") {
      o.topos.clear();
      for (const auto& s : split_list(need(i++))) {
        const auto x = s.find('x');
        if (x == std::string::npos) usage(2);
        o.topos.emplace_back(std::atoi(s.substr(0, x).c_str()),
                             std::atoi(s.substr(x + 1).c_str()));
      }
    } else if (a == "--capacities") {
      o.capacities.clear();
      for (const auto& s : split_list(need(i++))) {
        o.capacities.push_back(std::strtoull(s.c_str(), nullptr, 10));
      }
    }
    else if (a == "--delay-prob") o.delay_prob = std::atof(need(i++).c_str());
    else if (a == "--max-delay-ticks") o.delay_ticks = std::atol(need(i++).c_str());
    else if (a == "--iprobe-miss-prob") o.miss_prob = std::atof(need(i++).c_str());
    else if (a == "--stall-prob") o.stall_prob = std::atof(need(i++).c_str());
    else if (a == "--max-stall-us") o.stall_us = std::atol(need(i++).c_str());
    else if (a == "--sample-ms") o.sample_ms = std::atoi(need(i++).c_str());
    else if (a == "--statusz") o.statusz = 1;
    else if (a == "--trace-sample") o.trace_sample = std::atof(need(i++).c_str());
    else if (a == "--trace-out") o.trace_out = need(i++);
    else if (a == "--postmortem-out") o.postmortem_out = need(i++);
    else {
      std::fprintf(stderr, "stress_ygm: unknown option '%s'\n", a.c_str());
      usage(2);
    }
  }
  if (o.schemes.empty() || o.topos.empty() || o.capacities.empty()) usage(2);
  return o;
}

chaos_config make_chaos(const options& o, const std::string& preset,
                        std::uint64_t seed) {
  chaos_config cfg = preset == "heavy" ? chaos_config::heavy(seed)
                                       : chaos_config::light(seed);
  if (o.delay_prob >= 0) cfg.delay_prob = o.delay_prob;
  if (o.delay_ticks >= 0) cfg.max_delay_ticks = static_cast<std::uint32_t>(o.delay_ticks);
  if (o.miss_prob >= 0) cfg.iprobe_miss_prob = o.miss_prob;
  if (o.stall_prob >= 0) cfg.stall_prob = o.stall_prob;
  if (o.stall_us >= 0) cfg.max_stall_us = static_cast<std::uint32_t>(o.stall_us);
  return cfg;
}

template <template <class> class MailboxT>
std::vector<std::string> run_one(const trial_config& t,
                                 tp::backend_kind backend,
                                 ygm::progress::mode pmode, int sample_ms,
                                 int statusz) {
  // Violations come back through the serialized result channel: on the
  // socket backend rank bodies live in forked processes, so a
  // gather-to-rank-0 inside the world would never reach this process.
  // ygm::launch_collect (not the deprecated sim::run_collect) so engine
  // trials actually start the progress thread in every rank process.
  ygm::run_options opts;
  opts.nranks = t.num_ranks();
  opts.backend = backend;
  opts.chaos = t.chaos;
  opts.progress_mode = pmode;
  opts.sample_ms = sample_ms;
  opts.statusz = statusz;
  const auto blobs = ygm::launch_collect(opts, [&](sim::comm& c) {
    const auto local = run_chaos_trial<MailboxT>(c, t);
    std::vector<std::byte> out;
    ygm::ser::append_bytes(local, out);
    return out;
  });
  std::vector<std::string> all;
  for (const auto& b : blobs) {
    const auto local =
        ygm::ser::from_bytes<std::vector<std::string>>({b.data(), b.size()});
    all.insert(all.end(), local.begin(), local.end());
  }
  return all;
}

}  // namespace

int main(int argc, char** argv) {
  const options o = parse(argc, argv);
  const tp::backend_kind backend =
      o.backend ? *o.backend : tp::backend_from_env();
  const std::string backend_name(tp::to_string(backend));

  namespace telemetry = ygm::telemetry;
  if (o.trace_sample >= 0) telemetry::causal::set_sample_rate(o.trace_sample);
  if (!o.postmortem_out.empty()) {
    telemetry::causal::set_postmortem_path(o.postmortem_out);
    if (telemetry::causal::stall_timeout_ms() <= 0) {
      telemetry::causal::set_stall_timeout_ms(10000);
    }
  }
  // Tracing and the watchdog both record into per-rank telemetry lanes, so
  // either knob needs a session installed for the whole sweep.
  std::unique_ptr<telemetry::session> tsession;
  if (o.trace_sample > 0 || !o.trace_out.empty() ||
      !o.postmortem_out.empty()) {
    tsession = std::make_unique<telemetry::session>();
    telemetry::set_global(tsession.get());
  }

  std::uint64_t trials = 0;
  std::uint64_t failures = 0;
  for (auto scheme : o.schemes) {
    for (const bool hybrid : o.hybrids) {
      for (const bool timed : o.timed_modes) {
        for (const auto pmode : o.progress_modes) {
          // The engine refuses to advance timed worlds (virtual time is
          // rank-driven), so engine x timed would silently degenerate to
          // polling; skip the cell rather than report a vacuous pass.
          if (pmode == ygm::progress::mode::engine && timed) continue;
        for (const auto& preset : o.presets) {
          for (std::uint64_t s = 0; s < o.seeds; ++s) {
            const std::uint64_t seed = o.seed_base + s;
            trial_config t;
            t.seed = seed;
            t.scheme = scheme;
            const auto [n, c] = o.topos[seed % o.topos.size()];
            t.nodes = n;
            t.cores = c;
            t.capacity = o.capacities[seed % o.capacities.size()];
            t.timed = timed;
            t.serialize_self_sends = (seed % 4) == 2;
            t.msgs_per_rank = o.msgs;
            t.bcasts_per_rank = o.bcasts;
            t.epochs = o.epochs;
            t.chaos = make_chaos(o, preset, seed);
            t.use_progress_guard = pmode == ygm::progress::mode::engine;
            t.credit_bytes = static_cast<std::size_t>(o.credit_bytes);
            t.flood_bytes_per_s =
                static_cast<std::size_t>(o.flood_bytes_per_s);

            ++trials;
            std::vector<std::string> violations;
            try {
              violations =
                  hybrid ? run_one<ygm::core::hybrid_mailbox>(
                               t, backend, pmode, o.sample_ms, o.statusz)
                         : run_one<ygm::core::mailbox>(t, backend, pmode,
                                                       o.sample_ms, o.statusz);
            } catch (const std::exception& e) {
              violations.push_back(std::string("exception: ") + e.what());
            }
            if (!violations.empty()) {
              ++failures;
              const std::string scheme_name(
                  ygm::routing::to_string(t.scheme));
              const std::string pmode_name(ygm::progress::to_string(pmode));
              // The flow-control knobs ride on the recipe only when set, so
              // historical recipes replay byte-identically.
              std::string flow_flags;
              if (o.flood_bytes_per_s != 0) {
                flow_flags +=
                    " --flood " + std::to_string(o.flood_bytes_per_s);
              }
              if (o.credit_bytes != 0) {
                flow_flags +=
                    " --credit-bytes " + std::to_string(o.credit_bytes);
              }
              if (o.sample_ms >= 0) {
                flow_flags += " --sample-ms " + std::to_string(o.sample_ms);
              }
              if (o.statusz == 1) flow_flags += " --statusz";
              std::fprintf(stderr,
                           "FAIL backend=%s mailbox=%s chaos=%s progress=%s"
                           " %s\n"
                           "     replay: stress_ygm --seeds 1 --seed-base %llu"
                           " --schemes %s --mailboxes %s --timed %s --chaos"
                           " %s --msgs %d --bcasts %d --epochs %d"
                           " --backend %s --progress %s%s\n",
                           backend_name.c_str(),
                           hybrid ? "hybrid" : "mailbox", preset.c_str(),
                           pmode_name.c_str(), t.describe().c_str(),
                           static_cast<unsigned long long>(seed),
                           scheme_name.c_str(),
                           hybrid ? "hybrid" : "mailbox",
                           timed ? "on" : "off", preset.c_str(), o.msgs,
                           o.bcasts, o.epochs, backend_name.c_str(),
                           pmode_name.c_str(), flow_flags.c_str());
              for (const auto& v : violations) {
                std::fprintf(stderr, "     %s\n", v.c_str());
              }
            }
          }
        }
        }
      }
    }
  }

  if (tsession != nullptr) {
    telemetry::set_global(nullptr);
    if (!o.trace_out.empty()) {
      if (tsession->write_chrome_trace(o.trace_out)) {
        std::fprintf(stderr, "stress_ygm: wrote Chrome trace to %s\n",
                     o.trace_out.c_str());
      } else {
        std::fprintf(stderr, "stress_ygm: FAILED to write %s\n",
                     o.trace_out.c_str());
      }
    }
  }

  std::printf("stress_ygm: %llu trials on %s, %llu failed\n",
              static_cast<unsigned long long>(trials), backend_name.c_str(),
              static_cast<unsigned long long>(failures));
  return failures == 0 ? 0 : 1;
}
