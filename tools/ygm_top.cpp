// ygm_top — live cluster view over the per-process statusz endpoints.
//
// Every OS process hosting telemetry lanes serves a Unix-domain socket
// (telemetry/statusz.hpp) at <dir>/ygm-statusz.<pid>.sock. This tool scans
// that directory, polls each endpoint, and renders a refreshing cluster
// view: per-rank message rates, queue/credit/outq occupancy, progress-engine
// steal residency, and live p99 end-to-end latency from the online sketches
// — no offline ygm_trace pass required.
//
// Modes:
//   ygm_top [--dir D] [--interval-ms N]      refreshing terminal view
//   ygm_top --once --json                    one machine-readable snapshot
//   ygm_top --once --json --selfcheck        CI: exit 0 iff >=1 endpoint
//                                            answered health+metrics sanely
//                                            (--require-latency additionally
//                                            demands a live e2e sketch)
//   --wait-ms N                              selfcheck/first-poll patience
//
// Directory resolution mirrors the server side: --dir > YGM_STATUSZ_DIR >
// $TMPDIR > /tmp. Point --dir at a socket-backend rendezvous directory to
// watch that job (children bind their statusz sockets next to the rank
// sockets).
#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <variant>
#include <vector>

#include "common/mini_json.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/statusz.hpp"

namespace {

using ygm::common::json_parser;
using ygm::common::json_value;

struct options {
  std::string dir;
  int interval_ms = 1000;
  int wait_ms = 0;
  bool once = false;
  bool json = false;
  bool selfcheck = false;
  bool require_latency = false;
};

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--dir D] [--interval-ms N] [--wait-ms N] [--once]\n"
      "          [--json] [--selfcheck] [--require-latency]\n",
      argv0);
}

std::string default_dir() {
  if (const char* d = std::getenv("YGM_STATUSZ_DIR"); d != nullptr && *d) {
    return d;
  }
  if (const char* t = std::getenv("TMPDIR"); t != nullptr && *t) return t;
  return "/tmp";
}

std::vector<std::string> discover(const std::string& dir) {
  std::vector<std::string> out;
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return out;
  while (dirent* ent = readdir(d)) {
    const std::string name = ent->d_name;
    if (name.rfind("ygm-statusz.", 0) == 0 &&
        name.size() > 5 && name.compare(name.size() - 5, 5, ".sock") == 0) {
      out.push_back(dir + "/" + name);
    }
  }
  closedir(d);
  std::sort(out.begin(), out.end());
  return out;
}

// ------------------------------------------------------------ parsed model

struct lane_view {
  int world = 0;
  int rank = 0;
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
};

struct latency_view {
  std::string scheme;
  std::string kind;
  ygm::telemetry::histogram histo;  // rebuilt from shipped bucket parts
};

struct proc_view {
  std::string sock;
  double pid = 0;
  bool ok = false;
  double sample_ms = 0;
  double ticks = 0;
  bool engine = false;
  double engine_passes = 0;
  double engine_steal_attempts = 0;
  double engine_steals = 0;
  double engine_hook_pumps = 0;
  std::vector<lane_view> lanes;
  std::vector<latency_view> latency;
};

double num_or(const ygm::common::json_object& o, const std::string& k,
              double fallback) {
  auto it = o.find(k);
  return it != o.end() && it->second.is_number() ? it->second.num() : fallback;
}

bool parse_proc(const std::string& sock, proc_view& pv) {
  pv = proc_view{};
  pv.sock = sock;
  const std::string health =
      ygm::telemetry::live::statusz_query(sock, "health");
  if (health.empty()) return false;
  try {
    const json_value h = json_parser(health).parse();
    if (!h.is_object()) return false;
    const auto& ho = h.obj();
    pv.pid = num_or(ho, "pid", 0);
    auto ok_it = ho.find("ok");
    pv.ok = ok_it != ho.end() &&
            std::holds_alternative<bool>(ok_it->second.v) &&
            std::get<bool>(ok_it->second.v);
    pv.sample_ms = num_or(ho, "sample_ms", 0);
    pv.ticks = num_or(ho, "ticks", 0);
    if (auto e = ho.find("engine"); e != ho.end() && e->second.is_object()) {
      const auto& eo = e->second.obj();
      auto a = eo.find("active");
      pv.engine = a != eo.end() &&
                  std::holds_alternative<bool>(a->second.v) &&
                  std::get<bool>(a->second.v);
      pv.engine_passes = num_or(eo, "passes", 0);
      pv.engine_steal_attempts = num_or(eo, "steal_attempts", 0);
      pv.engine_steals = num_or(eo, "steals", 0);
      pv.engine_hook_pumps = num_or(eo, "hook_pumps", 0);
    }
  } catch (const std::exception&) {
    return false;
  }

  const std::string metrics =
      ygm::telemetry::live::statusz_query(sock, "metrics");
  if (metrics.empty()) return false;
  try {
    const json_value m = json_parser(metrics).parse();
    const auto& lanes = m.obj().at("lanes");
    for (const auto& lv : lanes.arr()) {
      const auto& lo = lv.obj();
      lane_view lane;
      lane.world = static_cast<int>(num_or(lo, "world", 0));
      lane.rank = static_cast<int>(num_or(lo, "rank", 0));
      if (auto c = lo.find("counters"); c != lo.end() && c->second.is_object()) {
        for (const auto& [k, v] : c->second.obj()) {
          if (v.is_number()) lane.counters[k] = v.num();
        }
      }
      if (auto g = lo.find("gauges"); g != lo.end() && g->second.is_object()) {
        for (const auto& [k, v] : g->second.obj()) {
          if (v.is_number()) lane.gauges[k] = v.num();
        }
      }
      pv.lanes.push_back(std::move(lane));
    }
  } catch (const std::exception&) {
    return false;
  }

  const std::string lat = ygm::telemetry::live::statusz_query(sock, "latency");
  if (!lat.empty()) {
    try {
      const json_value l = json_parser(lat).parse();
      for (const auto& ev : l.obj().at("latency").arr()) {
        const auto& eo = ev.obj();
        latency_view entry;
        entry.scheme = eo.at("scheme").str();
        entry.kind = eo.at("kind").str();
        std::array<std::uint64_t, ygm::telemetry::histogram::num_buckets> b{};
        if (auto bk = eo.find("buckets");
            bk != eo.end() && bk->second.is_array()) {
          for (const auto& pair : bk->second.arr()) {
            const auto& pa = pair.arr();
            const auto idx = static_cast<std::size_t>(pa.at(0).num());
            if (idx < b.size()) {
              b[idx] = static_cast<std::uint64_t>(pa.at(1).num());
            }
          }
        }
        entry.histo = ygm::telemetry::histogram::from_parts(
            b, static_cast<std::uint64_t>(num_or(eo, "count", 0)),
            num_or(eo, "sum", 0), num_or(eo, "min", 0), num_or(eo, "max", 0));
        pv.latency.push_back(std::move(entry));
      }
    } catch (const std::exception&) {
      // latency is optional — a process with no traced traffic has none
    }
  }
  return true;
}

/// Merge every process's (scheme, kind) sketches — identical bucket math to
/// the per-process merge in statusz.cpp, one level up.
std::map<std::pair<std::string, std::string>, ygm::telemetry::histogram>
merge_latency(const std::vector<proc_view>& procs) {
  std::map<std::pair<std::string, std::string>, ygm::telemetry::histogram>
      merged;
  for (const auto& p : procs) {
    for (const auto& l : p.latency) {
      merged[{l.scheme, l.kind}].merge(l.histo);
    }
  }
  return merged;
}

// ------------------------------------------------------------- JSON output

std::string jnum(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void print_json(const std::vector<proc_view>& procs, bool selfcheck_ok) {
  std::string out = "{\"endpoints\":" + std::to_string(procs.size());
  out += ",\"selfcheck\":";
  out += selfcheck_ok ? "true" : "false";
  out += ",\"procs\":[";
  bool first = true;
  for (const auto& p : procs) {
    if (!first) out += ',';
    first = false;
    out += "{\"pid\":" + jnum(p.pid) + ",\"ok\":";
    out += p.ok ? "true" : "false";
    out += ",\"sample_ms\":" + jnum(p.sample_ms);
    out += ",\"ticks\":" + jnum(p.ticks);
    out += ",\"engine_active\":";
    out += p.engine ? "true" : "false";
    if (p.engine) {
      out += ",\"engine_passes\":" + jnum(p.engine_passes);
      out += ",\"engine_steals\":" + jnum(p.engine_steals);
    }
    out += ",\"lanes\":[";
    bool fl = true;
    for (const auto& l : p.lanes) {
      if (!fl) out += ',';
      fl = false;
      out += "{\"world\":" + std::to_string(l.world) +
             ",\"rank\":" + std::to_string(l.rank);
      const auto c = [&](const char* k) {
        auto it = l.counters.find(k);
        return it != l.counters.end() ? it->second : 0.0;
      };
      const auto g = [&](const char* k) {
        auto it = l.gauges.find(k);
        return it != l.gauges.end() ? it->second : 0.0;
      };
      out += ",\"deliveries\":" + jnum(c("mailbox.deliveries"));
      out += ",\"mpi_sends\":" + jnum(c("mpi.sends"));
      out += ",\"queued_bytes\":" + jnum(g("queued_bytes"));
      out += ",\"credit_used\":" + jnum(g("credit_used"));
      out += ",\"outq_bytes\":" + jnum(g("outq_bytes"));
      out += '}';
    }
    out += "]}";
  }
  out += "],\"latency\":[";
  first = true;
  for (const auto& [key, h] : merge_latency(procs)) {
    if (!first) out += ',';
    first = false;
    out += "{\"scheme\":\"" + key.first + "\",\"kind\":\"" + key.second +
           "\",\"count\":" + std::to_string(h.count());
    out += ",\"p50_us\":" + jnum(h.percentile(0.50));
    out += ",\"p99_us\":" + jnum(h.percentile(0.99));
    out += ",\"p999_us\":" + jnum(h.percentile(0.999));
    out += '}';
  }
  out += "]}\n";
  std::fputs(out.c_str(), stdout);
}

// --------------------------------------------------------- terminal output

struct rate_state {
  std::map<std::tuple<double, int, int, std::string>, double> prev;
  std::chrono::steady_clock::time_point prev_at{};
  bool primed = false;
};

void print_view(const std::vector<proc_view>& procs, rate_state& rs) {
  const auto now = std::chrono::steady_clock::now();
  const double dt =
      rs.primed
          ? std::chrono::duration<double>(now - rs.prev_at).count()
          : 0.0;
  std::string out = "\x1b[H\x1b[2J";  // home + clear
  char line[256];
  std::snprintf(line, sizeof(line),
                "ygm_top — %zu process(es)\n"
                "%-8s %-6s %-6s %12s %12s %10s %10s %10s\n",
                procs.size(), "pid", "world", "rank", "deliv/s", "sends/s",
                "queuedB", "creditB", "outqB");
  out += line;
  for (const auto& p : procs) {
    for (const auto& l : p.lanes) {
      const auto rate = [&](const std::string& k) {
        auto it = l.counters.find(k);
        const double cur = it != l.counters.end() ? it->second : 0.0;
        const auto key = std::make_tuple(p.pid, l.world, l.rank, k);
        const auto pit = rs.prev.find(key);
        double r = 0;
        if (pit != rs.prev.end() && dt > 0 && cur >= pit->second) {
          r = (cur - pit->second) / dt;
        }
        rs.prev[key] = cur;
        return r;
      };
      const auto g = [&](const char* k) {
        auto it = l.gauges.find(k);
        return it != l.gauges.end() ? it->second : 0.0;
      };
      std::snprintf(line, sizeof(line),
                    "%-8.0f %-6d %-6d %12.0f %12.0f %10.0f %10.0f %10.0f\n",
                    p.pid, l.world, l.rank, rate("mailbox.deliveries"),
                    rate("mpi.sends"), g("queued_bytes"), g("credit_used"),
                    g("outq_bytes"));
      out += line;
    }
    if (p.engine) {
      const double steal_pct =
          p.engine_steal_attempts > 0
              ? 100.0 * p.engine_steals / p.engine_steal_attempts
              : 0.0;
      std::snprintf(line, sizeof(line),
                    "%-8.0f engine passes=%.0f steals=%.0f (%.1f%% of "
                    "attempts) hook_pumps=%.0f\n",
                    p.pid, p.engine_passes, p.engine_steals, steal_pct,
                    p.engine_hook_pumps);
      out += line;
    }
  }
  out += "\nlive latency (merged sketches):\n";
  const auto merged = merge_latency(procs);
  if (merged.empty()) {
    out += "  (none — enable causal tracing, e.g. YGM_TRACE_SAMPLE=0.05)\n";
  }
  for (const auto& [key, h] : merged) {
    std::snprintf(line, sizeof(line),
                  "  %-10s %-8s n=%-10llu p50=%.0fus p99=%.0fus p999=%.0fus\n",
                  key.first.c_str(), key.second.c_str(),
                  static_cast<unsigned long long>(h.count()),
                  h.percentile(0.50), h.percentile(0.99),
                  h.percentile(0.999));
    out += line;
  }
  std::fputs(out.c_str(), stdout);
  std::fflush(stdout);
  rs.prev_at = now;
  rs.primed = true;
}

}  // namespace

int main(int argc, char** argv) {
  options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto need = [&](int& idx) -> const char* {
      if (idx + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++idx];
    };
    if (a == "--dir") {
      o.dir = need(i);
    } else if (a == "--interval-ms") {
      o.interval_ms = std::atoi(need(i));
    } else if (a == "--wait-ms") {
      o.wait_ms = std::atoi(need(i));
    } else if (a == "--once") {
      o.once = true;
    } else if (a == "--json") {
      o.json = true;
    } else if (a == "--selfcheck") {
      o.selfcheck = true;
    } else if (a == "--require-latency") {
      o.require_latency = true;
    } else if (a == "--help" || a == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (o.dir.empty()) o.dir = default_dir();

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(o.wait_ms);
  rate_state rs;
  for (;;) {
    std::vector<proc_view> procs;
    for (const auto& sock : discover(o.dir)) {
      proc_view pv;
      // A vanished socket (process exited between scan and query) is
      // skipped, not an error.
      if (parse_proc(sock, pv)) procs.push_back(std::move(pv));
    }

    bool check_ok = false;
    if (o.selfcheck) {
      bool any_ok = false;
      bool any_latency = false;
      for (const auto& p : procs) {
        if (p.ok && !p.lanes.empty()) any_ok = true;
        for (const auto& l : p.latency) {
          if (l.kind == "e2e" && l.histo.count() > 0) any_latency = true;
        }
      }
      check_ok = any_ok && (!o.require_latency || any_latency);
    }

    const bool waiting =
        (procs.empty() || (o.selfcheck && !check_ok)) &&
        std::chrono::steady_clock::now() < deadline;
    if (waiting) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      continue;
    }

    if (o.json) {
      print_json(procs, check_ok);
    } else {
      print_view(procs, rs);
    }
    if (o.once || o.selfcheck) {
      if (o.selfcheck && !check_ok) {
        std::fprintf(stderr,
                     "ygm_top --selfcheck FAILED: %zu endpoint(s) in %s%s\n",
                     procs.size(), o.dir.c_str(),
                     o.require_latency ? " (live e2e latency required)" : "");
        return 1;
      }
      return 0;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(o.interval_ms));
  }
}
