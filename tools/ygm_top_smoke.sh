#!/bin/sh
# 4-rank multi-process smoke for the live-telemetry pipeline (ctest -L
# live): run a chaos shard on a forked-rank backend (socket or shm) with
# the statusz endpoint, the time-series sampler, and full causal tracing
# enabled, and make ygm_top discover every child's endpoint, parse all four
# JSON documents back, and see a live e2e latency sketch — all while the
# job is still running.
#
#   ygm_top_smoke.sh <stress_ygm> <ygm_top> [backend]
#
# YGM_STATUSZ_DIR pins every child's socket into one private directory so a
# concurrent ctest shard (or an unrelated job on the machine) can't leak
# endpoints into the scan.
set -u
STRESS=${1:?usage: ygm_top_smoke.sh <stress_ygm> <ygm_top> [backend]}
TOP=${2:?usage: ygm_top_smoke.sh <stress_ygm> <ygm_top> [backend]}
BACKEND=${3:-socket}

DIR=$(mktemp -d "${TMPDIR:-/tmp}/ygm-top-smoke.XXXXXX") || exit 1
trap 'rm -rf "$DIR"' EXIT INT TERM

# Enough trials x messages that ygm_top's retry window (60 s, polling every
# 100 ms) is guaranteed to overlap a live 4-rank world many times over.
YGM_STATUSZ_DIR=$DIR "$STRESS" --backend "$BACKEND" --seeds 4 --msgs 400 \
  --bcasts 2 --epochs 3 --topos 2x2 --timed off --chaos light \
  --statusz --sample-ms 20 --trace-sample 1.0 &
STRESS_PID=$!

"$TOP" --dir "$DIR" --once --json --selfcheck --require-latency \
  --wait-ms 60000
TOP_RC=$?

wait "$STRESS_PID"
STRESS_RC=$?

if [ "$TOP_RC" -ne 0 ]; then
  echo "ygm_top_smoke: ygm_top selfcheck failed (rc=$TOP_RC)" >&2
  exit 1
fi
if [ "$STRESS_RC" -ne 0 ]; then
  echo "ygm_top_smoke: stress_ygm failed (rc=$STRESS_RC)" >&2
  exit 1
fi
echo "ygm_top_smoke: PASSED"
