// ygm_trace: offline causal-trace analyzer (docs/TELEMETRY.md §Causal
// tracing).
//
// Reads a Chrome-trace JSON produced by a run with --trace-sample > 0,
// stitches the "trace.*" hop events back into per-message journeys, and
// prints the per-scheme latency decomposition the live counters cannot
// give: p50/p99 queue residency per hop kind and the hops-per-message
// distribution, cross-checked against router::max_hops() whenever the
// trace carries the world.config/world.scheme metadata that comm_world
// stamps on rank 0's lane.
//
//   ygm_trace trace.json                      # human-readable breakdown
//   ygm_trace --selfcheck trace.json          # exit 1 on any broken journey
//   ygm_trace --selfcheck --min-journeys 5 t.json
//
// --selfcheck is the CI smoke: every stitched journey must be complete
// (exactly one deliver), leg counts must match the router's expectation,
// and at least --min-journeys journeys must exist (a trace with zero
// journeys passes the invariants vacuously — the floor catches a sampling
// or piping regression).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/mini_json.hpp"
#include "routing/router.hpp"
#include "telemetry/journey.hpp"
#include "telemetry/metrics.hpp"

namespace {

namespace causal = ygm::telemetry::causal;
using ygm::common::json_parser;
using ygm::common::json_value;

[[noreturn]] void usage(int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: ygm_trace [--selfcheck] [--min-journeys N] "
               "<trace.json>\n"
               "  Stitches causal hop events (trace.*) from a Chrome-trace\n"
               "  JSON into per-message journeys and prints hop-latency\n"
               "  breakdowns. --selfcheck exits nonzero if any journey is\n"
               "  incomplete, disagrees with the routing scheme's expected\n"
               "  leg count, or fewer than N journeys were found.\n");
  std::exit(code);
}

/// Per-world shape metadata parsed from rank 0's timeline.
struct world_info {
  int nodes = 0;
  int cores = 0;
  std::optional<ygm::routing::scheme_kind> scheme;
  bool usable() const { return nodes > 0 && cores > 0 && scheme.has_value(); }
};

double arg_num(const ygm::common::json_object& o, const char* key,
               double fallback) {
  const auto it = o.find(key);
  return it != o.end() && it->second.is_number() ? it->second.num() : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  bool selfcheck = false;
  std::size_t min_journeys = 0;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "-h" || a == "--help") usage(0);
    else if (a == "--selfcheck") selfcheck = true;
    else if (a == "--min-journeys") {
      if (i + 1 >= argc) usage(2);
      min_journeys = std::strtoull(argv[++i], nullptr, 10);
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "ygm_trace: unknown option '%s'\n", a.c_str());
      usage(2);
    } else if (path.empty()) {
      path = a;
    } else {
      usage(2);
    }
  }
  if (path.empty()) usage(2);

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "ygm_trace: cannot open %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  json_value root;
  try {
    root = json_parser(buf.str()).parse();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ygm_trace: %s is not valid JSON: %s\n", path.c_str(),
                 e.what());
    return 2;
  }
  if (!root.is_object() || root.obj().count("traceEvents") == 0 ||
      !root.obj().at("traceEvents").is_array()) {
    std::fprintf(stderr, "ygm_trace: %s has no traceEvents array\n",
                 path.c_str());
    return 2;
  }

  // One pass over the events: world metadata + hop records + credit stalls.
  std::map<int, world_info> worlds;
  std::vector<causal::hop_record> hops;
  std::vector<causal::hop_record> stalls;  // credit.stall, reported apart
  for (const auto& ev : root.obj().at("traceEvents").arr()) {
    if (!ev.is_object()) continue;
    const auto& o = ev.obj();
    if (o.count("name") == 0 || !o.at("name").is_string()) continue;
    const std::string& name = o.at("name").str();
    const int pid = static_cast<int>(arg_num(o, "pid", -1));
    const ygm::common::json_object* args = nullptr;
    if (const auto it = o.find("args"); it != o.end() && it->second.is_object()) {
      args = &it->second.obj();
    }
    if (name == "world.config" && args != nullptr) {
      worlds[pid].nodes = static_cast<int>(arg_num(*args, "nodes", 0));
      worlds[pid].cores = static_cast<int>(arg_num(*args, "cores", 0));
      continue;
    }
    if (name == "world.scheme" && args != nullptr) {
      const int s = static_cast<int>(arg_num(*args, "scheme", -1));
      if (s >= 0 && s < static_cast<int>(std::size(ygm::routing::all_schemes))) {
        worlds[pid].scheme = static_cast<ygm::routing::scheme_kind>(s);
      }
      continue;
    }
    causal::hop_kind kind;
    if (!causal::parse_hop_event_name(name, kind)) continue;
    if (args == nullptr) continue;
    causal::hop_record h;
    h.world = pid;
    h.rank = static_cast<int>(arg_num(o, "tid", -1));
    h.id = static_cast<std::uint64_t>(arg_num(*args, "id", 0));
    h.kind = kind;
    h.ts_us = arg_num(o, "ts", 0);
    h.dur_us = arg_num(o, "dur", 0);
    const auto hb = static_cast<std::uint64_t>(arg_num(*args, "hb", 0));
    h.hop = causal::unpack_hop(hb);
    h.bytes = causal::unpack_bytes(hb);
    if (kind == causal::hop_kind::credit_stall) {
      // Backpressure events describe a sending rank, not a message: they
      // carry the stalled destination in `id`, never stitch into journeys,
      // and get their own report below.
      stalls.push_back(h);
      continue;
    }
    hops.push_back(h);
  }

  const causal::journey_map journeys = causal::stitch(std::move(hops));

  // Routers per world (when the trace carries the metadata) so journeys are
  // checked against the exact expected path length, not just the bound.
  std::map<int, ygm::routing::router> routers;
  for (const auto& [pid, info] : worlds) {
    if (info.usable()) {
      routers.emplace(pid, ygm::routing::router(
                               *info.scheme,
                               ygm::routing::topology(info.nodes, info.cores)));
    }
  }
  const auto expected_legs = [&](int world, int origin, int dest) -> int {
    const auto it = routers.find(world);
    if (it == routers.end() || origin < 0 || dest < 0 || origin == dest) {
      return -1;
    }
    return static_cast<int>(it->second.path(origin, dest).size());
  };
  const std::vector<std::string> errors =
      causal::check_journeys(journeys, expected_legs);

  // ------------------------------------------------------------- report
  std::printf("ygm_trace: %s\n", path.c_str());
  for (const auto& [pid, info] : worlds) {
    if (!info.usable()) continue;
    std::printf("  world %d: %d node(s) x %d core(s), scheme %s, "
                "max_hops %d\n",
                pid, info.nodes, info.cores,
                std::string(ygm::routing::to_string(*info.scheme)).c_str(),
                routers.at(pid).max_hops());
  }

  std::size_t complete = 0, in_flight = 0;
  std::map<std::size_t, std::size_t> legs_histogram;
  ygm::telemetry::histogram residency[6];  // indexed by hop_kind
  std::size_t hop_counts[6] = {};
  for (const auto& [key, j] : journeys) {
    (j.complete() ? complete : in_flight) += 1;
    if (j.complete()) ++legs_histogram[j.legs()];
    for (const auto& h : j.hops) {
      const auto k = static_cast<unsigned>(h.kind);
      ++hop_counts[k];
      if (h.kind == causal::hop_kind::flush ||
          h.kind == causal::hop_kind::handoff) {
        residency[k].record(h.dur_us);
      }
    }
  }

  std::printf("  journeys: %zu complete, %zu in flight\n", complete,
              in_flight);
  std::printf("  %-16s %10s %12s %12s\n", "hop kind", "events", "p50 res us",
              "p99 res us");
  for (const auto k :
       {causal::hop_kind::enqueue, causal::hop_kind::flush,
        causal::hop_kind::handoff, causal::hop_kind::forward,
        causal::hop_kind::deliver}) {
    const auto i = static_cast<unsigned>(k);
    if (hop_counts[i] == 0) continue;
    const bool has_res = residency[i].count() > 0;
    std::printf("  %-16s %10zu %12s %12s\n",
                std::string(causal::hop_event_name(k)).c_str(), hop_counts[i],
                has_res ? std::to_string(residency[i].percentile(0.5)).c_str()
                        : "-",
                has_res ? std::to_string(residency[i].percentile(0.99)).c_str()
                        : "-");
  }
  std::printf("  legs per message:");
  for (const auto& [legs, n] : legs_histogram) {
    std::printf("  %zu legs x %zu", legs, n);
  }
  std::printf("\n");

  // End-to-end wall time per journey (first enqueue -> deliver), bucketed by
  // the world's routing scheme — the offline twin of the live
  // "live.e2e_us.<scheme>" sketches, so ygm_top's online percentiles can be
  // validated against a full trace (docs/TELEMETRY.md §Live telemetry).
  std::map<std::string, ygm::telemetry::histogram> e2e_by_scheme;
  for (const auto& [key, j] : journeys) {
    if (!j.complete()) continue;
    double first_us = 0, deliver_us = 0;
    bool have_first = false, have_deliver = false;
    for (const auto& h : j.hops) {
      if (h.kind == causal::hop_kind::enqueue &&
          (!have_first || h.ts_us < first_us)) {
        first_us = h.ts_us;
        have_first = true;
      }
      if (h.kind == causal::hop_kind::deliver) {
        deliver_us = h.ts_us;
        have_deliver = true;
      }
    }
    if (!have_first || !have_deliver || deliver_us < first_us) continue;
    const auto w = worlds.find(key.first);
    const std::string scheme =
        w != worlds.end() && w->second.scheme.has_value()
            ? std::string(ygm::routing::to_string(*w->second.scheme))
            : "unknown";
    e2e_by_scheme[scheme].record(deliver_us - first_us);
  }
  if (!e2e_by_scheme.empty()) {
    std::printf("  %-16s %10s %12s %12s %12s\n", "e2e scheme", "journeys",
                "p50 us", "p99 us", "p999 us");
    for (const auto& [scheme, h] : e2e_by_scheme) {
      std::printf("  %-16s %10llu %12.1f %12.1f %12.1f\n", scheme.c_str(),
                  static_cast<unsigned long long>(h.count()),
                  h.percentile(0.5), h.percentile(0.99), h.percentile(0.999));
    }
  }

  // Backpressure: queue residency attributable to exhausted flow-control
  // credit. Not part of any journey — a stall delays every message a rank
  // would have injected, so it is reported as rank-side time.
  if (!stalls.empty()) {
    ygm::telemetry::histogram stall_us;
    std::uint64_t max_unacked = 0;
    std::map<std::uint64_t, std::size_t> per_dest;
    for (const auto& s : stalls) {
      stall_us.record(s.dur_us);
      max_unacked = std::max(max_unacked, s.bytes);
      ++per_dest[s.id];  // id carries the stalled destination rank
    }
    std::printf("  credit stalls: %zu (p50 %.1f us, p99 %.1f us, max unacked "
                "%llu bytes)\n",
                stalls.size(), stall_us.percentile(0.5),
                stall_us.percentile(0.99),
                static_cast<unsigned long long>(max_unacked));
    std::printf("    stalled destinations:");
    for (const auto& [dest, n] : per_dest) {
      std::printf("  rank %llu x %zu", static_cast<unsigned long long>(dest),
                  n);
    }
    std::printf("\n");
  }

  // Cross-check every world's observed worst case against the scheme bound.
  bool bound_violated = false;
  for (const auto& [pid, rtr] : routers) {
    std::size_t world_max = 0;
    for (const auto& [key, j] : journeys) {
      if (key.first == pid && j.complete()) {
        world_max = std::max(world_max, j.legs());
      }
    }
    const bool ok =
        world_max <= static_cast<std::size_t>(rtr.max_hops());
    if (!ok) bound_violated = true;
    std::printf("  world %d: max observed legs %zu %s router::max_hops() %d\n",
                pid, world_max, ok ? "<=" : "EXCEEDS", rtr.max_hops());
  }

  for (const auto& e : errors) {
    std::fprintf(stderr, "ygm_trace: BROKEN %s\n", e.c_str());
  }

  if (selfcheck) {
    bool ok = errors.empty() && !bound_violated && in_flight == 0;
    if (journeys.size() < min_journeys) {
      std::fprintf(stderr,
                   "ygm_trace: selfcheck needs >= %zu journeys, found %zu\n",
                   min_journeys, journeys.size());
      ok = false;
    }
    std::printf("ygm_trace: selfcheck %s\n", ok ? "PASSED" : "FAILED");
    return ok ? 0 : 1;
  }
  return 0;
}
